"""Unit tests for placement refinement and dispatch rebalancing."""

import numpy as np
import pytest

from repro.cluster.storage import PartitionStore
from repro.cluster.topology import t1, t2, t3
from repro.core.partitioned import PartitionedGraph
from repro.core.placement import (
    estimate_partition_costs,
    partition_traffic_matrix,
    rebalance_placement,
    refine_colocated_placement,
)
from repro.errors import PlacementError
from repro.graph.digraph import Graph
from repro.graph.generators import ring
from repro.partitioning.baselines import chunk_partition


def simple_pgraph() -> PartitionedGraph:
    g = ring(8)
    parts = (np.arange(8) // 2).astype(np.int64)
    return PartitionedGraph(g, parts, 4)


class TestCosts:
    def test_costs_positive_and_shaped(self, small_graph):
        pg = PartitionedGraph(small_graph,
                              chunk_partition(small_graph, 4), 4)
        costs = estimate_partition_costs(pg)
        assert costs.shape == (4,)
        assert np.all(costs > 0)

    def test_network_factor_zero_drops_traffic_term(self):
        pg = simple_pgraph()
        with_net = estimate_partition_costs(pg, network_factor=4.0)
        without = estimate_partition_costs(pg, network_factor=0.0)
        assert np.all(with_net >= without)
        assert with_net.sum() > without.sum()

    def test_traffic_matrix_symmetric(self):
        pg = simple_pgraph()
        mat = partition_traffic_matrix(pg)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)
        # ring: each adjacent partition pair exchanges one edge (16 bytes)
        assert mat[0, 1] == 16.0


class TestRebalance:
    def test_relieves_bottleneck_via_replicas(self):
        # 3 partitions all on machine 0, replicas everywhere
        store = PartitionStore([0, 0, 0], num_machines=3, replication=3,
                               seed=0)
        costs = np.array([10.0, 10.0, 10.0])
        assignment = rebalance_placement(store, costs)
        load = np.bincount(assignment, minlength=3)
        assert load.max() == 1

    def test_respects_replica_constraint(self):
        store = PartitionStore([0, 0], num_machines=4, replication=2,
                               seed=3)
        assignment = rebalance_placement(store, np.array([5.0, 5.0]))
        for p in range(2):
            assert assignment[p] in store.replicas(p)

    def test_nonlocal_allowed_with_fetch_costs(self):
        store = PartitionStore([0, 0, 0], num_machines=4, replication=1,
                               seed=0)
        costs = np.array([10.0, 10.0, 10.0])
        fetch = np.zeros(3)  # free fetches: pure balancing
        assignment = rebalance_placement(store, costs, fetch_costs=fetch)
        assert np.bincount(assignment, minlength=4).max() == 1

    def test_expensive_fetch_blocks_moves(self):
        store = PartitionStore([0, 0], num_machines=2, replication=1,
                               seed=0)
        costs = np.array([10.0, 10.0])
        fetch = np.array([100.0, 100.0])
        assignment = rebalance_placement(store, costs, fetch_costs=fetch)
        assert list(assignment) == [0, 0]

    def test_rejects_bad_shapes(self):
        store = PartitionStore([0], num_machines=2, replication=1)
        with pytest.raises(PlacementError):
            rebalance_placement(store, np.array([1.0, 2.0]))


class TestRefineColocated:
    def test_splits_stacked_independent_partitions(self):
        # four disjoint 2-cliques: no inter-partition traffic, so
        # stacking them on one machine is pure imbalance
        edges = [(2 * i, 2 * i + 1) for i in range(4)]
        edges += [(b, a) for a, b in edges]
        g = Graph.from_edges(edges, num_vertices=8)
        pg = PartitionedGraph(g, (np.arange(8) // 2).astype(np.int64), 4)
        placement = np.zeros(4, dtype=np.int64)
        refined = refine_colocated_placement(pg, placement, t1(4))
        assert np.bincount(refined, minlength=4).max() == 1

    def test_keeps_stack_when_colocated_traffic_dominates(self):
        """On a ring, splitting turns heavy local traffic into network
        traffic — the load model must refuse the move."""
        pg = simple_pgraph()
        placement = np.zeros(4, dtype=np.int64)
        refined = refine_colocated_placement(pg, placement, t1(4))
        loads = np.bincount(refined, minlength=4)
        # whichever arrangement it picks must not be worse than stacked
        assert loads.max() <= 4

    def test_never_crosses_pods(self):
        pg = simple_pgraph()
        topo = t2(2, 1, 4)
        placement = np.array([0, 0, 2, 2])  # two per pod
        refined = refine_colocated_placement(pg, placement, topo)
        for p in range(4):
            assert topo.pod_of(int(refined[p])) == topo.pod_of(
                int(placement[p])
            )

    def test_preserves_tight_pairs(self):
        """A pair exchanging heavy traffic stays together."""
        # 0<->1 heavily connected, in partitions 0 and 1
        edges = [(0, 1), (1, 0)] * 1 + [(0, 1)]
        g = Graph.from_edges(edges, num_vertices=4, dedup=True)
        parts = np.array([0, 1, 2, 3])
        pg = PartitionedGraph(g, parts, 4)
        placement = np.array([0, 0, 1, 1], dtype=np.int64)
        refined = refine_colocated_placement(pg, placement, t1(2))
        assert refined[0] == refined[1]

    def test_balanced_input_unchanged(self):
        pg = simple_pgraph()
        placement = np.array([0, 1, 2, 3], dtype=np.int64)
        refined = refine_colocated_placement(pg, placement, t1(4))
        loads = np.bincount(refined, minlength=4)
        assert loads.max() == 1
