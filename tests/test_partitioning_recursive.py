"""Unit tests for recursive bisection, k-way balance and baselines."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph.generators import composite_social_graph, grid
from repro.partitioning.baselines import (
    chunk_partition,
    hash_partition,
    random_partition,
)
from repro.partitioning.kway import kway_refine_balance
from repro.partitioning.metrics import (
    balance,
    cut_matrix,
    edge_cut,
    inner_edge_ratio,
    partition_sizes,
    weighted_cut,
)
from repro.partitioning.recursive import (
    num_levels_for_parts,
    recursive_bisection,
)
from repro.partitioning.wgraph import WGraph


class TestLevels:
    def test_levels(self):
        assert num_levels_for_parts(1) == 0
        assert num_levels_for_parts(2) == 1
        assert num_levels_for_parts(64) == 6

    @pytest.mark.parametrize("bad", [0, 3, 6, -2])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(PartitioningError):
            num_levels_for_parts(bad)


class TestRecursiveBisection:
    def test_partition_count(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 8, seed=0)
        assert set(np.unique(rp.parts)) == set(range(8))

    def test_single_part(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 1, seed=0)
        assert np.all(rp.parts == 0)

    def test_beats_random_on_communities(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 8, seed=0)
        ours = inner_edge_ratio(small_graph, rp.parts)
        rand = inner_edge_ratio(
            small_graph, random_partition(small_graph, 8, seed=0)
        )
        assert ours > rand + 0.3

    def test_bitpath_encoding(self, small_graph):
        """Partition ids encode the bisection path bit by bit."""
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 8, seed=0, kway_tolerance=None)
        side0 = rp.side_at_level(0)
        assert np.array_equal(side0, rp.parts >> 2)
        prefix1 = rp.prefix_at_level(1)
        assert np.array_equal(prefix1, rp.parts >> 2)

    def test_node_cuts_recorded(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 4, seed=0, kway_tolerance=None)
        assert set(rp.node_cuts) == {(0, 0), (1, 0), (1, 1)}
        # root cut equals the actual level-1 split cut
        side = rp.side_at_level(0)
        assert rp.node_cuts[(0, 0)] == weighted_cut(wg, side)

    def test_monotone_level_cuts(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 8, seed=0, kway_tolerance=None)
        cuts = [rp.total_cut_at_level(l) for l in range(4)]
        assert cuts == sorted(cuts)

    def test_balanced(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rp = recursive_bisection(wg, 8, seed=0)
        b = balance(rp.parts, 8, weights=wg.vweights)
        assert b <= 1.12


class TestKwayRefine:
    def test_restores_balance(self, small_graph):
        wg = WGraph.from_digraph(small_graph)
        rng = np.random.default_rng(0)
        # deliberately unbalanced assignment
        parts = rng.integers(0, 4, wg.num_vertices).astype(np.int64)
        parts[: wg.num_vertices // 2] = 0
        refined = kway_refine_balance(wg, parts, 4, tolerance=0.1)
        weights = np.zeros(4)
        np.add.at(weights, refined, wg.vweights.astype(float))
        assert weights.max() <= 1.12 * weights.sum() / 4

    def test_noop_when_balanced(self):
        wg = WGraph.from_digraph(grid(4, 4))
        parts = np.repeat(np.arange(4), 4).astype(np.int64)
        refined = kway_refine_balance(wg, parts, 4, tolerance=0.2)
        assert np.array_equal(refined, parts)

    def test_does_not_mutate_input(self):
        wg = WGraph.from_digraph(grid(4, 4))
        parts = np.zeros(16, dtype=np.int64)
        parts[:2] = 1
        snapshot = parts.copy()
        kway_refine_balance(wg, parts, 2)
        assert np.array_equal(parts, snapshot)


class TestBaselines:
    def test_random_balanced(self, small_graph):
        parts = random_partition(small_graph, 8, seed=1)
        sizes = partition_sizes(parts, 8)
        assert sizes.max() - sizes.min() <= 1

    def test_random_deterministic(self, small_graph):
        a = random_partition(small_graph, 8, seed=1)
        b = random_partition(small_graph, 8, seed=1)
        assert np.array_equal(a, b)

    def test_hash_deterministic(self, small_graph):
        a = hash_partition(small_graph, 8)
        b = hash_partition(small_graph, 8)
        assert np.array_equal(a, b)

    def test_hash_scatters_consecutive_ids(self, small_graph):
        parts = hash_partition(small_graph, 8)
        same = np.count_nonzero(parts[:-1] == parts[1:])
        assert same < 0.4 * parts.size

    def test_chunk_contiguous(self, small_graph):
        parts = chunk_partition(small_graph, 4)
        assert np.all(np.diff(parts) >= 0)

    def test_rejects_zero_parts(self, small_graph):
        with pytest.raises(PartitioningError):
            random_partition(small_graph, 0)


class TestMetrics:
    def test_edge_cut_and_ier_consistent(self, small_graph):
        parts = random_partition(small_graph, 4, seed=0)
        cut = edge_cut(small_graph, parts)
        assert inner_edge_ratio(small_graph, parts) == pytest.approx(
            1 - cut / small_graph.num_edges
        )

    def test_cut_matrix_totals(self, small_graph):
        parts = random_partition(small_graph, 4, seed=0)
        mat = cut_matrix(small_graph, parts, 4)
        assert mat.sum() == small_graph.num_edges
        assert np.trace(mat) == small_graph.num_edges - edge_cut(
            small_graph, parts
        )

    def test_single_partition_perfect_ier(self, small_graph):
        parts = np.zeros(small_graph.num_vertices, dtype=np.int64)
        assert inner_edge_ratio(small_graph, parts) == 1.0

    def test_rejects_wrong_shape(self, small_graph):
        with pytest.raises(PartitioningError):
            edge_cut(small_graph, np.zeros(3, dtype=np.int64))
