"""Shape tests for the experiment functions, on a reduced workload.

These assert the *qualitative* reproduction targets (who wins, which way
the gaps point) quickly; the full-size assertions live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.bench.experiments import (
    cascaded_propagation_experiment,
    fig7_mr_vs_prop,
    fig10_fault_tolerance,
    make_app,
    table1_partitioning,
    table4_loc,
    table5_ier,
)
from repro.bench.workloads import (
    SCALED_LINK_BPS,
    Workload,
    make_cluster,
)
from repro.cluster.topology import t1
from repro.graph.generators import composite_social_graph


@pytest.fixture(scope="module")
def small_workload():
    graph = composite_social_graph(
        num_communities=8, community_size=128, k=6, seed=99
    )
    return Workload(graph=graph,
                    cluster=make_cluster(t1(8, SCALED_LINK_BPS)),
                    num_parts=16, seed=99)


class TestTable1:
    def test_shape(self):
        table = table1_partitioning(num_machines=16, num_levels=5)
        parmetis = dict(zip(table.columns, table.rows[0][1]))
        aware = dict(zip(table.columns, table.rows[1][1]))
        assert aware["T1"] == parmetis["T1"]
        assert aware["T2(2,1)"] < parmetis["T2(2,1)"]
        assert aware["T2(4,1)"] < parmetis["T2(4,1)"]

    def test_deterministic(self):
        a = table1_partitioning(num_machines=16, num_levels=4, seed=1)
        b = table1_partitioning(num_machines=16, num_levels=4, seed=1)
        assert a.rows == b.rows


class TestTable4:
    def test_propagation_smaller_than_mapreduce(self):
        table = table4_loc()
        prop = table.rows[0][1]
        mr = table.rows[1][1]
        assert sum(prop) < sum(mr)
        assert all(p <= m for p, m in zip(prop, mr))

    def test_paper_rows_included(self):
        table = table4_loc()
        labels = [label for label, __ in table.rows]
        assert "Hadoop (paper)" in labels


class TestTable5:
    def test_shape(self, small_workload):
        table = table5_ier(small_workload.graph,
                           num_parts_list=(16, 8, 4), seed=0)
        ours = table.rows[0][1]
        rand = table.rows[1][1]
        assert ours == sorted(ours)  # fewer parts, higher ier
        assert all(o > r for o, r in zip(ours, rand))


class TestFig7:
    def test_propagation_wins_where_expected(self, small_workload):
        series = fig7_mr_vs_prop(small_workload, apps=("NR", "VDD"))
        assert series["NR"]["speedup"] > 1.0
        assert series["NR"]["net_reduction_pct"] > 30.0
        assert 0.5 <= series["VDD"]["speedup"] <= 2.0


class TestCascade:
    def test_identical_results_and_savings(self, small_workload):
        result = cascaded_propagation_experiment(small_workload,
                                                 iterations=(3,))
        r = result["iterations"][3]
        assert 0 <= result["v_k_ratio"] <= 1
        assert r["cascaded_disk"] <= r["plain_disk"]
        assert r["cascaded_time"] <= r["plain_time"] * 1.001


class TestFig10:
    def test_recovery(self, small_workload):
        result = fig10_fault_tolerance(small_workload, iterations=2)
        assert result["faulty_response"] >= result["normal_response"]
        assert result["failures"] + result["retries"] >= 1
        assert result["overhead_pct"] < 100.0


class TestOptimizationLevels:
    def test_o_levels_ordered_for_nr(self, small_workload):
        """The headline shape: O4 strictly beats O1 on time and I/O."""
        results = {}
        for layout, local in (("oblivious", False),
                              ("bandwidth-aware", True)):
            surfer = small_workload.surfer(layout)
            job = surfer.run_propagation(make_app("NR", "propagation"),
                                         iterations=1, local_opts=local)
            results[(layout, local)] = job
        o1 = results[("oblivious", False)]
        o4 = results[("bandwidth-aware", True)]
        assert o4.metrics.response_time < o1.metrics.response_time
        assert o4.metrics.network_bytes <= o1.metrics.network_bytes
        assert o4.metrics.disk_bytes < o1.metrics.disk_bytes
