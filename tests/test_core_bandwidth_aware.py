"""Unit tests for bandwidth-aware partitioning (Algorithm 4) and the
partition sketch."""

import numpy as np
import pytest

from repro.cluster.topology import t1, t2
from repro.core.bandwidth_aware import (
    bandwidth_aware_partition,
    build_machine_tree,
    oblivious_partition,
    random_machine_tree,
)
from repro.core.sketch import PartitionSketch
from repro.errors import PartitioningError


class TestMachineTree:
    def test_covers_all_levels(self):
        tree = build_machine_tree(t1(8), num_levels=4, seed=0)
        for level in range(5):
            for prefix in range(1 << level):
                assert (level, prefix) in tree

    def test_root_is_whole_cluster(self):
        tree = build_machine_tree(t1(8), num_levels=3, seed=0)
        assert sorted(tree[(0, 0)]) == list(range(8))

    def test_leaves_are_single_machines(self):
        tree = build_machine_tree(t1(8), num_levels=4, seed=0)
        for prefix in range(16):
            assert len(tree[(4, prefix)]) == 1

    def test_children_partition_parent(self):
        tree = build_machine_tree(t2(2, 1, 8), num_levels=3, seed=0)
        for level in range(3):
            for prefix in range(1 << level):
                parent = set(tree[(level, prefix)])
                left = set(tree[(level + 1, 2 * prefix)])
                right = set(tree[(level + 1, 2 * prefix + 1)])
                if len(parent) > 1:
                    assert left | right == parent
                    assert not left & right

    def test_pods_separate_at_top_level(self):
        topo = t2(2, 1, 8)
        tree = build_machine_tree(topo, num_levels=3, seed=0)
        pods_left = {topo.pod_of(m) for m in tree[(1, 0)]}
        pods_right = {topo.pod_of(m) for m in tree[(1, 1)]}
        assert pods_left.isdisjoint(pods_right)

    def test_random_tree_valid_structure(self):
        tree = random_machine_tree(t1(8), num_levels=4, seed=0)
        assert sorted(tree[(0, 0)]) == list(range(8))
        for prefix in range(16):
            assert len(tree[(4, prefix)]) == 1


class TestPlans:
    def test_bandwidth_aware_plan_complete(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 16, seed=0)
        assert plan.num_parts == 16
        assert plan.parts.shape == (small_graph.num_vertices,)
        assert plan.placement.shape == (16,)
        assert plan.method == "bandwidth-aware"
        assert set(np.unique(plan.parts)) <= set(range(16))

    def test_same_cut_quality_both_methods(self, small_graph):
        """Oblivious baseline uses the same bisections — same cut."""
        ba = bandwidth_aware_partition(small_graph, t1(8), 16, seed=0)
        ob = oblivious_partition(small_graph, t1(8), 16, seed=0)
        assert np.array_equal(ba.parts, ob.parts)

    def test_oblivious_scatters_siblings(self, small_graph):
        """Sibling partitions mostly share a machine under the sketch
        placement and mostly do not under the oblivious one."""
        ba = bandwidth_aware_partition(small_graph, t1(8), 16, seed=0)
        ob = oblivious_partition(small_graph, t1(8), 16, seed=0)
        ba_same = sum(ba.placement[2 * i] == ba.placement[2 * i + 1]
                      for i in range(8))
        ob_same = sum(ob.placement[2 * i] == ob.placement[2 * i + 1]
                      for i in range(8))
        assert ba_same > ob_same

    def test_sibling_partitions_same_pod(self, small_graph):
        topo = t2(2, 1, 8)
        plan = bandwidth_aware_partition(small_graph, topo, 16, seed=0)
        for i in range(8):
            assert (topo.pod_of(int(plan.placement[2 * i]))
                    == topo.pod_of(int(plan.placement[2 * i + 1])))

    def test_placement_balanced(self, small_graph):
        plan = oblivious_partition(small_graph, t1(8), 16, seed=0)
        counts = np.bincount(plan.placement, minlength=8)
        assert counts.max() - counts.min() <= 1


class TestSketch:
    def test_monotonicity_always_holds(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 16, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 16)
        assert sketch.check_monotonicity()

    def test_cross_edges_symmetric(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 8, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 8)
        a, b = (2, 0), (2, 3)
        assert sketch.cross_edges(a, b) == sketch.cross_edges(b, a)

    def test_total_cut_level_zero_is_zero(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 8, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 8)
        assert sketch.total_cut_at_level(0) == 0

    def test_total_cut_at_leaf_level_counts_all_cross(self, small_graph):
        from repro.partitioning.metrics import edge_cut
        plan = bandwidth_aware_partition(small_graph, t1(8), 8, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 8)
        assert sketch.total_cut_at_level(3) == edge_cut(
            small_graph, plan.parts
        )

    def test_leaves_of(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 8, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 8)
        assert list(sketch.leaves_of(0, 0)) == list(range(8))
        assert list(sketch.leaves_of(1, 1)) == [4, 5, 6, 7]
        assert list(sketch.leaves_of(3, 5)) == [5]

    def test_overlapping_nodes_rejected(self, small_graph):
        plan = bandwidth_aware_partition(small_graph, t1(8), 8, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 8)
        with pytest.raises(PartitioningError):
            sketch.cross_edges((1, 0), (2, 1))

    def test_proximity_mostly_holds(self, small_graph):
        """Real sketches may violate proximity slightly; bound the rate."""
        plan = bandwidth_aware_partition(small_graph, t1(8), 16, seed=0)
        sketch = PartitionSketch(small_graph, plan.parts, 16)
        violations = sketch.proximity_violations()
        # 2 pairings per grandparent node, levels 2..4
        total_checks = sum(2 * (1 << (level - 2))
                           for level in range(2, 5))
        assert len(violations) <= total_checks // 2
