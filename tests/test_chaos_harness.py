"""Randomized chaos sweeps: the recovery invariant under seeded fuzzing.

Property-style: ≥50 seeded random fault schedules across three apps and
both engines must each end bit-identical to the fault-free baseline or
as a cleanly-reported failure, with the trace reconciling either way.
The sweep sizes keep each class under a few seconds (the simulated jobs
are tiny); the seeds are fixed so a failure here is replayable with
``repro chaos --seed``.
"""

import numpy as np
import pytest

from repro.apps import (
    ConnectedComponentsPropagation,
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
    RecommenderPropagation,
)
from repro.cluster.faults import FaultPlan
from repro.errors import JobError
from repro.graph.generators import composite_social_graph
from repro.runtime.chaos import (
    random_fault_plan,
    results_identical,
    run_chaos_sweep,
    surfer_factory,
)
from repro.runtime.checkpoint import CheckpointPolicy
from tests.conftest import make_test_cluster


@pytest.fixture(scope="module")
def chaos_graph():
    return composite_social_graph(num_communities=4, community_size=32,
                                  k=4, seed=7)


def make_factory(graph, replication):
    return surfer_factory(graph, lambda: make_test_cluster(8),
                          num_parts=8, replication=replication, seed=3)


def prop_runner(app_cls, iterations, until=False):
    policy = CheckpointPolicy(interval=1)

    def run_job(surfer, plan):
        return surfer.run_propagation(
            app_cls(), iterations=iterations, until_convergence=until,
            fault_plan=plan,
            checkpoint=policy if plan is not None else None,
        )

    return run_job


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        plans = []
        for _ in range(2):
            rng = np.random.default_rng([9, 4])
            plans.append(random_fault_plan(rng, 8, 100.0,
                                           replica_sets=[[0, 1], [2, 3]]))
        a, b = plans
        assert [(k.machine, k.time) for k in a.kills] \
            == [(k.machine, k.time) for k in b.kills]
        assert [(t.machine, t.time, t.downtime) for t in a.transients] \
            == [(t.machine, t.time, t.downtime) for t in b.transients]
        assert [(s.machine, s.time, s.duration, s.factor)
                for s in a.slowdowns] \
            == [(s.machine, s.time, s.duration, s.factor)
                for s in b.slowdowns]

    def test_different_indices_differ(self):
        plans = [
            random_fault_plan(np.random.default_rng([9, i]), 8, 100.0)
            for i in range(10)
        ]
        signatures = {
            tuple((k.machine, k.time) for k in p.kills) for p in plans
        }
        assert len(signatures) > 1

    def test_kill_budget_respected(self):
        for i in range(20):
            rng = np.random.default_rng([1, i])
            plan = random_fault_plan(rng, 8, 50.0, max_kills=3)
            assert len(plan.kills) <= 3

    def test_sweep_needs_schedules(self, chaos_graph):
        make = make_factory(chaos_graph, replication=1)
        with pytest.raises(JobError):
            run_chaos_sweep(make, prop_runner(NetworkRankingPropagation,
                                              3), 0, 1)


class TestResultsIdentical:
    def test_arrays(self):
        a = np.arange(4, dtype=np.float64)
        assert results_identical(a, a.copy())
        assert not results_identical(a, a.astype(np.float32))
        assert not results_identical(a, a[:3])
        assert not results_identical(a, list(a))
        b = a.copy()
        b[2] += 1e-12
        assert not results_identical(a, b)

    def test_containers(self):
        a = {"x": np.ones(3), "y": [1, 2]}
        b = {"x": np.ones(3), "y": [1, 2]}
        assert results_identical(a, b)
        b["y"] = (1, 2)
        assert not results_identical(a, b)
        assert not results_identical({"x": 1}, {"z": 1})

    def test_scalars(self):
        assert results_identical(3, 3)
        assert not results_identical(3, 3.5)


class TestChaosSweeps:
    """The ≥50-schedule acceptance sweep, split across workloads."""

    def test_nr_propagation_replication1(self, chaos_graph):
        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1),
            prop_runner(NetworkRankingPropagation, 4),
            schedules=18, seed=101,
        )
        assert report.ok, report.summary()
        # replication=1 makes total loss common: restarts must trigger
        assert report.total_restarts > 0

    def test_cc_propagation_replication2(self, chaos_graph):
        graph = chaos_graph.symmetrized()
        report = run_chaos_sweep(
            make_factory(graph, replication=2),
            prop_runner(ConnectedComponentsPropagation, 20, until=True),
            schedules=16, seed=202,
        )
        assert report.ok, report.summary()

    def test_rs_propagation_replication1(self, chaos_graph):
        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1),
            prop_runner(RecommenderPropagation, 3),
            schedules=16, seed=303,
        )
        assert report.ok, report.summary()
        assert report.total_restarts > 0

    def test_nr_mapreduce_replication1(self, chaos_graph):
        policy = CheckpointPolicy(interval=1)

        def run_job(surfer, plan):
            return surfer.run_mapreduce(
                NetworkRankingMapReduce(), rounds=3, fault_plan=plan,
                checkpoint=policy if plan is not None else None,
            )

        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1), run_job,
            schedules=8, seed=404,
        )
        assert report.ok, report.summary()

    def test_sweep_outcome_bookkeeping(self, chaos_graph):
        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1),
            prop_runner(NetworkRankingPropagation, 3),
            schedules=6, seed=55,
        )
        assert len(report.outcomes) == 6
        assert report.identical + report.clean_failures == 6
        assert [o.index for o in report.outcomes] == list(range(6))
        if report.restarted_job is not None:
            assert report.restarted_job.restarts == max(
                o.restarts for o in report.outcomes
                if o.status == "identical"
            )

    def test_per_job_wall_clocks_recorded(self, chaos_graph):
        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1),
            prop_runner(NetworkRankingPropagation, 4),
            schedules=18, seed=101,
        )
        assert report.ok, report.summary()
        # every job gets its own wall clock — the whole-sweep wall used
        # to be stamped on baseline and restarted records alike
        assert report.baseline_wall_s > 0.0
        assert all(o.wall_s > 0.0 for o in report.outcomes)
        assert report.restarted_job is not None
        assert report.restarted_wall_s > 0.0
        assert report.restarted_wall_s != report.baseline_wall_s
        assert report.restarted_wall_s in {
            o.wall_s for o in report.outcomes}

    def test_without_checkpoint_losses_are_clean_failures(self,
                                                          chaos_graph):
        def run_job(surfer, plan):
            return surfer.run_propagation(
                NetworkRankingPropagation(), iterations=3,
                fault_plan=plan,
            )

        report = run_chaos_sweep(
            make_factory(chaos_graph, replication=1), run_job,
            schedules=6, seed=77,
        )
        assert report.ok, report.summary()
        assert report.total_restarts == 0
