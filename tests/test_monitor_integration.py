"""Integration: the job monitor over real engine runs."""

import pytest

from repro.apps import NetworkRankingPropagation
from repro.cluster.cluster import Cluster
from repro.cluster.spec import MachineSpec
from repro.cluster.topology import t1
from repro.core.surfer import Surfer
from repro.runtime.monitor import JobMonitor, estimate_progress
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import Task
from tests.conftest import make_test_cluster


class TestMonitorOnRealRuns:
    @pytest.fixture()
    def job(self, small_graph):
        surfer = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                        seed=3)
        return surfer.run_propagation(NetworkRankingPropagation(),
                                      iterations=2)

    def test_makespan_matches_metrics(self, job):
        monitor = JobMonitor(job.executions)
        assert monitor.makespan == pytest.approx(
            job.metrics.response_time
        )

    def test_busy_time_matches_metrics(self, job):
        monitor = JobMonitor(job.executions)
        total_busy = sum(u.busy_seconds
                         for u in monitor.machine_utilization())
        assert total_busy == pytest.approx(
            job.metrics.total_machine_time
        )

    def test_stage_summary_matches_structure(self, job):
        summary = JobMonitor(job.executions).stage_summary()
        assert set(summary) == {"transfer", "combine"}
        # 2 iterations x 8 partitions each
        assert summary["transfer"]["tasks"] == 16
        assert summary["combine"]["tasks"] == 16

    def test_progress_monotone(self, job):
        execs = job.executions
        horizon = max(e.end for e in execs)
        samples = [estimate_progress(execs, t)
                   for t in (0, horizon / 4, horizon / 2, horizon)]
        assert samples == sorted(samples)
        assert samples[0] == 0.0
        assert samples[-1] == 1.0


class TestRunStages:
    def test_consecutive_stages_barrier(self):
        spec = MachineSpec(disk_read_bps=100.0, disk_write_bps=100.0,
                           cpu_ops_per_sec=100.0, nic_bps=100.0)
        cluster = Cluster(t1(2, link_bps=100.0), machine_spec=spec)
        sched = StageScheduler(cluster)
        results = sched.run_stages([
            [Task("a", machine=0, cpu_ops=100)],
            [Task("b", machine=1, cpu_ops=100)],
        ])
        assert len(results) == 2
        assert results[1].start_time == pytest.approx(results[0].end_time)
        assert len(sched.executions) == 2
