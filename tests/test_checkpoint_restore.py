"""Checkpoint/restore with job-level restart.

Covers the :class:`CheckpointPolicy` contract, snapshot semantics, the
priced write/restore stages, the end-to-end restart-from-checkpoint
acceptance scenario (a job that previously died with DataLossError now
completes bit-identically), exhausted-retries clean failure, and the
storage-layer satellites (placement-aware re-replication, degraded
replica sets, explicit replica-set construction).
"""

import numpy as np
import pytest

from repro.apps import (
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.storage import PartitionStore
from repro.cluster.topology import t2
from repro.core.surfer import Surfer
from repro.errors import JobError, PlacementError
from repro.runtime.checkpoint import CheckpointPolicy, CheckpointStore
from repro.runtime.events import EventStream, reconcile
from repro.runtime.monitor import JobMonitor
from tests.conftest import make_test_cluster


def make_surfer(graph, machines=4, parts=8, replication=1, seed=3,
                topology=None):
    return Surfer(graph, make_test_cluster(machines, topology=topology),
                  num_parts=parts, seed=seed, replication=replication)


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(JobError):
            CheckpointPolicy(interval=-1)
        with pytest.raises(JobError):
            CheckpointPolicy(interval=1, max_restarts=-1)
        with pytest.raises(JobError):
            CheckpointPolicy(interval=1, backoff_base=-1.0)
        with pytest.raises(JobError):
            CheckpointPolicy(interval=1, backoff_factor=0.5)

    def test_enabled(self):
        assert not CheckpointPolicy().enabled
        assert not CheckpointPolicy(interval=0).enabled
        assert CheckpointPolicy(interval=2).enabled

    def test_exponential_backoff(self):
        policy = CheckpointPolicy(interval=1, backoff_base=10.0,
                                  backoff_factor=3.0)
        assert policy.backoff(1) == 10.0
        assert policy.backoff(2) == 30.0
        assert policy.backoff(3) == 90.0
        with pytest.raises(JobError):
            policy.backoff(0)

    def test_store_rejects_disabled_policy(self, tiny_graph):
        surfer = make_surfer(tiny_graph)
        with pytest.raises(JobError):
            CheckpointStore(CheckpointPolicy(), surfer.pgraph,
                            EventStream())


class TestSnapshots:
    def test_snapshot_copies_values_but_shares_graph(self, tiny_graph):
        surfer = make_surfer(tiny_graph)
        ckpt = CheckpointStore(CheckpointPolicy(interval=1),
                               surfer.pgraph, EventStream())
        app = NetworkRankingPropagation()
        state = app.setup(surfer.pgraph)
        snap = ckpt.snapshot_state(state)
        assert snap is not state
        # the (immutable) partitioned graph must be shared, not copied
        for attr in ("pgraph", "graph"):
            if hasattr(state, attr):
                assert getattr(snap, attr) is getattr(state, attr)
        # the values must be an independent copy
        state.values[:] = -1.0
        assert not np.array_equal(snap.values, state.values)

    def test_write_tasks_shapes_and_bytes(self, tiny_graph):
        surfer = make_surfer(tiny_graph, replication=2)
        ckpt = CheckpointStore(CheckpointPolicy(interval=1),
                               surfer.pgraph, EventStream())
        tasks, total = ckpt.write_tasks(surfer.store, surfer.assignment, 3)
        state_bytes = sum(ckpt.state_nbytes(p)
                          for p in range(surfer.store.num_partitions))
        # replication=2: every byte is written twice (writer + replica)
        assert total == 2 * state_bytes
        writers = [t for t in tasks if t.partition is not None]
        receivers = [t for t in tasks if t.partition is None]
        assert len(writers) == surfer.store.num_partitions
        assert all(t.kind == "checkpoint" for t in tasks)
        assert all(t.name.startswith("ckpt[3]") for t in tasks)
        # the receive side must carry the same bytes the writers send
        sent = sum(b for t in writers for _, b in t.sends)
        recv = sum(t.disk_write_bytes for t in receivers)
        assert sent == recv

    def test_commit_counts(self, tiny_graph):
        surfer = make_surfer(tiny_graph)
        events = EventStream()
        ckpt = CheckpointStore(CheckpointPolicy(interval=1),
                               surfer.pgraph, events)
        assert ckpt.latest() is None
        ckpt.commit(0, object(), 100)
        ckpt.commit(2, object(), 100)
        assert ckpt.latest().step == 2
        assert events.metrics.get("checkpoint.checkpoints") == 2
        assert events.metrics.get("checkpoint.bytes_written") == 200


class TestJobRestart:
    """The acceptance scenario: total partition loss, restart, recover."""

    def test_restart_is_bit_identical(self, tiny_graph):
        baseline = make_surfer(tiny_graph).run_propagation(
            NetworkRankingPropagation(), iterations=4
        )
        assert not baseline.failed

        surfer = make_surfer(tiny_graph)
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        # without a checkpoint policy this exact scenario dies with a
        # DataLossError (see test_data_loss_returns_clean_failed_job)
        job = surfer.run_propagation(
            NetworkRankingPropagation(), iterations=4, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=1),
        )
        assert not job.failed
        assert job.restarts >= 1
        assert job.checkpoints >= 1
        assert np.array_equal(baseline.result, job.result)
        # recovery made the run slower, not cheaper
        assert job.response_time > baseline.response_time
        assert reconcile(job) == []
        kinds = {e.kind for e in job.recovery_events}
        assert "job-restart" in kinds and "data-loss" in kinds
        m = job.events.metrics
        assert m.get("checkpoint.restart_attempts") >= 1
        assert m.get("checkpoint.restores") >= 1
        assert m.get("checkpoint.bytes_read") > 0
        assert m.get("checkpoint.backoff_seconds") > 0

    def test_monitor_reports_restart(self, tiny_graph):
        surfer = make_surfer(tiny_graph)
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        job = surfer.run_propagation(
            NetworkRankingPropagation(), iterations=4, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=1),
        )
        monitor = JobMonitor(job.executions, job.recovery_events,
                             events=job.events)
        summary = monitor.restart_summary()
        assert summary is not None
        assert summary.startswith(f"restarted {job.restarts}×")
        assert "from checkpoint @ superstep" in summary
        assert summary in monitor.report()

    def test_no_restart_line_without_restarts(self, tiny_graph):
        job = make_surfer(tiny_graph).run_propagation(
            NetworkRankingPropagation(), iterations=2
        )
        monitor = JobMonitor(job.executions, job.recovery_events)
        assert monitor.restart_summary() is None
        assert "restarted" not in monitor.report()

    def test_restart_before_first_interval_checkpoint(self, tiny_graph):
        """interval > iterations: recovery replays from superstep 0."""
        baseline = make_surfer(tiny_graph).run_propagation(
            NetworkRankingPropagation(), iterations=3
        )
        surfer = make_surfer(tiny_graph)
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        job = surfer.run_propagation(
            NetworkRankingPropagation(), iterations=3, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=10),
        )
        assert not job.failed
        assert job.restarts >= 1
        assert np.array_equal(baseline.result, job.result)
        assert reconcile(job) == []

    def test_exhausted_restart_budget_fails_cleanly(self, tiny_graph):
        surfer = make_surfer(tiny_graph, machines=4, replication=1)
        plan = FaultPlan()
        # stagger kills so each restart meets a fresh total loss
        victims = sorted({surfer.store.primary(p)
                          for p in range(surfer.store.num_partitions)})
        for i, m in enumerate(victims):
            plan.add_kill(m, 1.0 + 30.0 * i)
        job = surfer.run_propagation(
            NetworkRankingPropagation(), iterations=4, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=1, max_restarts=1),
        )
        assert job.failed
        assert job.result is None
        assert job.restarts == 1
        assert job.error is not None
        assert ("restart budget exhausted" in job.error
                or "no machines left alive" in job.error)
        assert reconcile(job) == []

    def test_fault_free_checkpointed_run_identical_but_costlier(
            self, tiny_graph):
        plain = make_surfer(tiny_graph).run_propagation(
            NetworkRankingPropagation(), iterations=4
        )
        job = make_surfer(tiny_graph).run_propagation(
            NetworkRankingPropagation(), iterations=4,
            checkpoint=CheckpointPolicy(interval=2),
        )
        assert not job.failed and job.restarts == 0
        # iterations=4, interval=2 -> checkpoints at steps 0 and 2
        assert job.checkpoints == 2
        assert np.array_equal(plain.result, job.result)
        assert job.metrics.disk_bytes > plain.metrics.disk_bytes
        assert reconcile(job) == []

    def test_mapreduce_restart_is_bit_identical(self, tiny_graph):
        baseline = make_surfer(tiny_graph).run_mapreduce(
            NetworkRankingMapReduce(), rounds=3
        )
        surfer = make_surfer(tiny_graph)
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        job = surfer.run_mapreduce(
            NetworkRankingMapReduce(), rounds=3, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=1),
        )
        assert not job.failed
        assert job.restarts >= 1
        assert np.array_equal(baseline.result, job.result)
        assert reconcile(job) == []


class TestStorageSatellites:
    def test_placement_aware_repair_prefers_same_pod(self):
        # 8 machines in 4 pods of 2; partition 0's primary is machine 0,
        # its pod sibling is machine 1.  With equal load the repair copy
        # must land on the sibling (highest bandwidth to the primary).
        topo = t2(4, 1, 8)
        store = PartitionStore.from_replica_sets(
            [[0], [2], [4], [6]], 8, replication=2, topology=topo,
        )
        copies = store.re_replicate(range(8))
        assert (0, 0, 1) in copies
        for p, src, dst in copies:
            assert topo.pod_of(src) == topo.pod_of(dst)

    def test_topology_free_repair_is_least_loaded_lowest_id(self):
        store = PartitionStore.from_replica_sets(
            [[0], [1]], 4, replication=2,
        )
        copies = store.re_replicate(range(4))
        # machines 2 and 3 are empty; lowest id breaks the tie
        assert copies == [(0, 0, 2), (1, 1, 3)]

    def test_degraded_replica_set_when_too_few_survivors(self):
        """replication=3 with only 2 alive: repair stops at 2 copies."""
        store = PartitionStore([0, 1], 4, replication=3, seed=0)
        store.handle_failure(2)
        store.handle_failure(3)
        copies = store.re_replicate([0, 1])
        for p in range(2):
            assert sorted(store.replicas(p)) == [0, 1]
            assert len(store.replicas(p)) == 2 < store.replication
        assert store.under_replicated() == [0, 1]
        # a second pass must be a no-op, not an infinite loop
        assert store.re_replicate([0, 1]) == []
        assert copies  # the first pass did copy up to the survivor count

    def test_from_replica_sets_validation(self):
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[0]], 2, replication=0)
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[]], 2, replication=1)
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[5]], 2, replication=1)
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[0]], 2, replication=1,
                                             failed=[0])
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[0, 0]], 2, replication=1)
        with pytest.raises(PlacementError):
            PartitionStore.from_replica_sets([[0]], 2, replication=1,
                                             partition_bytes=[1, 2])

    def test_from_replica_sets_roundtrip(self):
        store = PartitionStore.from_replica_sets(
            [[1, 2], [2, 0]], 3, replication=2, partition_bytes=[10, 20],
        )
        assert store.num_partitions == 2
        assert store.primary(0) == 1
        assert store.replicas(1) == [2, 0]
        assert store.partition_nbytes(1) == 20
        assert store.under_replicated() == []
