"""Vectorized Transfer fast path: equivalence, routing determinism,
and the shipped-message accounting regression.

The scalar per-edge path is the oracle: the array path must reproduce its
results, message counts, byte counts and task costs *bit for bit* at
every optimization level (see docs/COST_MODEL.md for the contract).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.apps import NetworkRankingPropagation
from repro.apps.connected_components import ConnectedComponentsPropagation
from repro.apps.recommender import RecommenderPropagation
from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.graph.generators import composite_social_graph
from repro.propagation.api import MessageBox, PropagationApp, fold_by_dest
from repro.propagation.engine import virtual_partition
from repro.mapreduce.engine import reducer_of
from tests.conftest import make_test_cluster

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# ----------------------------------------------------------------------
# CSR slice gathering
# ----------------------------------------------------------------------
class TestOutEdgesOf:
    def test_matches_scan_order(self, small_graph):
        verts = np.array([5, 0, 17, 100, 3], dtype=np.int64)
        src, dst = small_graph.out_edges_of(verts)
        expected = [
            (int(u), int(v))
            for u in verts
            for v in small_graph.out_neighbors(int(u))
        ]
        assert list(zip(src.tolist(), dst.tolist())) == expected

    def test_empty_subset(self, small_graph):
        src, dst = small_graph.out_edges_of(np.zeros(0, dtype=np.int64))
        assert src.size == 0 and dst.size == 0

    def test_full_graph_matches_edges(self, small_graph):
        src, dst = small_graph.out_edges_of(
            np.arange(small_graph.num_vertices)
        )
        assert np.array_equal(src, small_graph.edge_sources())
        assert np.array_equal(dst, small_graph.out_indices)


# ----------------------------------------------------------------------
# Order-exact array folding and box construction
# ----------------------------------------------------------------------
class TestFoldByDest:
    def test_float_add_is_bit_identical_to_scalar_fold(self):
        rng = np.random.default_rng(11)
        dests = rng.integers(0, 40, 5000)
        values = rng.random(5000)
        oracle: dict[int, float] = {}
        for d, v in zip(dests, values):
            d = int(d)
            oracle[d] = oracle[d] + v if d in oracle else v
        uniq, merged, counts = fold_by_dest(dests, values, np.add)
        assert uniq.tolist() == sorted(oracle)
        for d, m in zip(uniq.tolist(), merged):
            assert m == oracle[d]  # exact, not approx
        assert int(counts.sum()) == 5000

    def test_minimum_fold(self):
        dests = np.array([3, 1, 3, 1, 3])
        values = np.array([5, 9, 2, 4, 7], dtype=np.int64)
        uniq, merged, counts = fold_by_dest(dests, values, np.minimum)
        assert uniq.tolist() == [1, 3]
        assert merged.tolist() == [4, 2]
        assert counts.tolist() == [2, 3]


class TestFromArrays:
    def test_bags_match_add_sequence(self):
        dests = np.array([2, 1, 2, 2, 1])
        values = np.array([10, 20, 30, 40, 50])
        oracle = MessageBox()
        for d, v in zip(dests, values):
            oracle.add(int(d), v)
        box = MessageBox.from_arrays(dests, values)
        assert box.data.keys() == oracle.data.keys()
        for d in oracle.data:
            assert [int(v) for v in box.values_of(d)] == \
                [int(v) for v in oracle.values_of(d)]
        assert box.counts == oracle.counts

    def test_merged_match_add_sequence(self):
        rng = np.random.default_rng(5)
        dests = rng.integers(0, 10, 300)
        values = rng.random(300)
        oracle = MessageBox(merge=lambda a, b: a + b)
        for d, v in zip(dests, values):
            oracle.add(int(d), v)
        box = MessageBox.from_arrays(dests, values, merge=lambda a, b: a + b,
                                     ufunc=np.add)
        assert set(box.data) == set(oracle.data)
        for d in oracle.data:
            assert box.data[d] == oracle.data[d]  # bitwise
        assert box.counts == oracle.counts

    def test_payload_cache_invalidated_by_add(self):
        app = NetworkRankingPropagation()
        box = MessageBox()
        box.add(1, 1.0)
        first = box.payload_bytes(app)
        box.add(2, 1.0)
        assert box.payload_bytes(app) == 2 * first


# ----------------------------------------------------------------------
# Scalar vs. vectorized engine equivalence
# ----------------------------------------------------------------------
def _job_signature(job):
    reports = [
        (r.messages_emitted, r.messages_shipped, r.network_bytes,
         r.spill_bytes, r.locally_propagated)
        for r in job.reports
    ]
    tasks = [
        (e.task.name, e.task.cpu_ops, e.task.disk_read_bytes,
         e.task.disk_write_bytes, tuple(e.task.sends),
         tuple(e.task.receives), e.task.disk_penalty)
        for e in job.executions
    ]
    metrics = (job.metrics.network_bytes, job.metrics.disk_bytes,
               job.metrics.response_time)
    return reports, tasks, metrics


class TestFastPathEquivalence:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=8, community_size=64, k=5, seed=9
        )

    @pytest.mark.parametrize("local_opts", [True, False])
    @pytest.mark.parametrize("app_name", ["NR", "CC", "RS"])
    def test_bit_identical_products(self, graph, app_name, local_opts):
        apps = {
            "NR": (NetworkRankingPropagation, graph),
            "CC": (ConnectedComponentsPropagation, graph.symmetrized()),
            "RS": (RecommenderPropagation, graph),
        }
        app_cls, g = apps[app_name]
        surfer = Surfer(g, make_test_cluster(4), num_parts=8, seed=3)
        scalar = surfer.run_propagation(app_cls(), iterations=3,
                                        local_opts=local_opts,
                                        vectorized=False)
        fast = surfer.run_propagation(app_cls(), iterations=3,
                                      local_opts=local_opts,
                                      vectorized=True)
        assert np.array_equal(np.asarray(scalar.result),
                              np.asarray(fast.result))
        assert _job_signature(scalar) == _job_signature(fast)

    def test_force_vectorized_rejects_unsupported_app(self, graph):
        class NoArrayApp(PropagationApp):
            name = "no-array"
            is_associative = True

            def transfer(self, u, v, state):
                return 1.0

            def combine(self, v, values, state):
                return sum(values)

            def merge(self, a, b):
                return a + b

            def update(self, state, combined):
                pass

            def setup(self, pgraph):
                return None

        surfer = Surfer(graph, make_test_cluster(4), num_parts=8, seed=3)
        with pytest.raises(JobError):
            surfer.run_propagation(NoArrayApp(), vectorized=True)

    def test_scalar_select_without_array_twin_falls_back(self, graph):
        """Overriding select but not select_array disqualifies the fast
        path instead of silently selecting every vertex."""

        class HalfSelect(NetworkRankingPropagation):
            def select(self, u, state):
                return u % 2 == 0

        surfer = Surfer(graph, make_test_cluster(4), num_parts=8, seed=3)
        with pytest.raises(JobError):
            surfer.run_propagation(HalfSelect(), vectorized=True)
        auto = surfer.run_propagation(HalfSelect())  # auto: scalar path
        scalar = surfer.run_propagation(HalfSelect(), vectorized=False)
        assert np.array_equal(np.asarray(auto.result),
                              np.asarray(scalar.result))
        assert _job_signature(auto) == _job_signature(scalar)


# ----------------------------------------------------------------------
# Regression: messages_shipped at O1/O2 (no local optimizations)
# ----------------------------------------------------------------------
class TestShippedAccounting:
    def test_unmerged_cross_messages_all_counted(self, small_graph):
        """Without local optimizations an associative app ships every raw
        message; the report must not collapse them to distinct
        destinations (the pre-fix behavior)."""
        surfer = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                        seed=3)
        job = surfer.run_propagation(NetworkRankingPropagation(),
                                     local_opts=False)
        report = job.reports[0]
        # NR transfers along every edge, so every cross edge ships one
        # unmerged message.
        assert report.messages_shipped == surfer.pgraph.num_cross_edges
        # merging must make the count strictly smaller on this workload
        merged = surfer.run_propagation(NetworkRankingPropagation(),
                                        local_opts=True)
        assert merged.reports[0].messages_shipped < report.messages_shipped


# ----------------------------------------------------------------------
# Regression: routing determinism across PYTHONHASHSEED values
# ----------------------------------------------------------------------
_ROUTE_SNIPPET = """
from repro.propagation.engine import virtual_partition
from repro.mapreduce.engine import reducer_of
keys = ["user:42", "item-7", ("pair", 3), b"blob", 42, -5]
print([virtual_partition(k, 16) for k in keys])
print([reducer_of(k, 8) for k in keys])
"""


class TestRoutingDeterminism:
    def _route_output(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _ROUTE_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        return proc.stdout

    def test_string_key_routing_survives_hash_salting(self):
        out0 = self._route_output("0")
        out1 = self._route_output("12345")
        assert out0 == out1
        # and the parent process (whatever its seed) agrees too
        keys = ["user:42", "item-7", ("pair", 3), b"blob", 42, -5]
        local = str([virtual_partition(k, 16) for k in keys]) + "\n" + \
            str([reducer_of(k, 8) for k in keys]) + "\n"
        assert out0 == local

    def test_int_routing_unchanged_from_seed(self):
        # the Knuth multiplicative hash for ints is load-bearing for
        # existing layouts: keep it byte-for-byte
        assert virtual_partition(42, 16) == \
            ((42 * 2654435761) & 0xFFFFFFFF) % 16
        assert reducer_of(np.int64(9), 8) == \
            ((9 * 2654435761) & 0xFFFFFFFF) % 8
