"""Tests for the observability layer: spans, metrics, Chrome traces,
reconciliation, bench JSON and the None-transfer cost contract."""

import json

import numpy as np
import pytest

from repro.apps import APP_REGISTRY
from repro.bench.benchjson import (
    RECORD_FIELDS,
    SCHEMA,
    job_record,
    load_bench_json,
    validate_bench_json,
    write_bench_json,
)
from repro.bench.workloads import make_cluster
from repro.cluster.faults import FaultPlan, MachineKill
from repro.cluster.topology import t2
from repro.core import Surfer
from repro.errors import JobError
from repro.graph.generators import composite_social_graph
from repro.propagation.api import PropagationApp
from repro.runtime.events import (
    EventStream,
    MetricsRegistry,
    Span,
    chrome_trace,
    reconcile,
    write_chrome_trace,
)
from repro.runtime.monitor import (
    JobMonitor,
    estimate_progress,
    failed_task_seconds,
)
from repro.runtime.tasks import Task, TaskExecution


def small_surfer(seed=0, machines=8, parts=16):
    graph = composite_social_graph(num_communities=8, community_size=96,
                                   seed=seed)
    cluster = make_cluster(t2(2, 1, machines, 200e6))
    return Surfer(graph, cluster, num_parts=parts, seed=seed)


@pytest.fixture(scope="module")
def nr_job():
    surfer = small_surfer()
    prop_cls, __, __ = APP_REGISTRY["NR"]
    return surfer.run_propagation(prop_cls(), iterations=2)


# ----------------------------------------------------------------------
# MetricsRegistry / EventStream units
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.add("a.b")
        m.add("a.b", 2.5)
        assert m.get("a.b") == 3.5
        assert m.get("missing") == 0.0
        assert m.get("missing", 7.0) == 7.0

    def test_gauges_overwrite(self):
        m = MetricsRegistry()
        m.set_gauge("g", 1.0)
        m.set_gauge("g", 4.0)
        assert m.get("g") == 4.0

    def test_snapshot_and_report(self):
        m = MetricsRegistry()
        m.add("z.count", 2)
        m.set_gauge("u", 0.5)
        snap = m.snapshot()
        assert snap == {"z.count": 2.0, "gauge:u": 0.5}
        text = m.report()
        assert "z.count" in text and "(gauge)" in text


class TestEventStream:
    def test_task_spans_exclude_run_level(self):
        s = EventStream()
        s.emit(name="t", kind="transfer", start=0.0, end=1.0, machine=2)
        s.emit(name="stage[0]", kind="stage", start=0.0, end=1.0)
        assert len(s.task_spans()) == 1
        assert s.machines() == [2]
        assert s.makespan == 1.0

    def test_empty_stream(self):
        s = EventStream()
        assert s.task_spans() == []
        assert s.machines() == []
        assert s.makespan == 0.0
        assert s.stage_totals() == {}
        assert s.wall_seconds() == 0.0

    def test_annotate_last(self):
        s = EventStream()
        s.emit(name="t", kind="k", start=0.0, end=1.0, machine=0)
        s.annotate_last(wall_self_seconds=0.25)
        assert s.spans[-1].wall_self_seconds == 0.25

    def test_stage_totals_skip_failed_cost(self):
        s = EventStream()
        s.emit(name="ok", kind="transfer", start=0.0, end=2.0, machine=0,
               cpu_ops=10.0, disk_read_bytes=100.9)
        s.emit(name="bad", kind="transfer", start=0.0, end=1.0, machine=1,
               succeeded=False, cpu_ops=99.0, disk_read_bytes=500.0)
        totals = s.stage_totals()["transfer"]
        assert totals["tasks"] == 2
        assert totals["failed"] == 1
        assert totals["seconds"] == pytest.approx(3.0)
        # failed cost is excluded; bytes are int-truncated like the
        # cluster machine counters
        assert totals["cpu_ops"] == 10.0
        assert totals["disk_read_bytes"] == 100


# ----------------------------------------------------------------------
# Progress estimation (the fixed semantics)
# ----------------------------------------------------------------------
def _exec(start, end, succeeded=True, machine=0):
    task = Task("t", machine=machine)
    return TaskExecution(task, machine, start, end, succeeded)


class TestEstimateProgress:
    def test_failed_work_not_counted_as_progress(self):
        execs = [_exec(0.0, 10.0, succeeded=False),
                 _exec(10.0, 20.0)]
        # at t=10 the only finished execution failed: nothing is done,
        # and the retry (dispatched at 10) has not progressed yet
        assert estimate_progress(execs, 10.0) == 0.0
        assert estimate_progress(execs, 15.0) == pytest.approx(0.5)
        assert estimate_progress(execs, 20.0) == 1.0

    def test_future_executions_ignored(self):
        execs = [_exec(0.0, 10.0), _exec(50.0, 60.0)]
        # at t=10 the job manager has dispatched only the first task
        assert estimate_progress(execs, 10.0) == 1.0

    def test_failure_indistinguishable_while_running(self):
        execs = [_exec(0.0, 10.0, succeeded=False)]
        # failure is only known at its end
        assert estimate_progress(execs, 5.0) == pytest.approx(0.5)
        assert estimate_progress(execs, 10.0) == 0.0

    def test_empty_and_all_failed(self):
        assert estimate_progress([], 5.0) == 1.0
        failed = [_exec(0.0, 10.0, succeeded=False)]
        assert estimate_progress(failed, 20.0) == 0.0

    def test_zero_duration_executions(self):
        execs = [_exec(3.0, 3.0)]
        assert estimate_progress(execs, 2.0) == 0.0
        assert estimate_progress(execs, 3.0) == 1.0

    def test_failed_task_seconds(self):
        execs = [_exec(0.0, 10.0, succeeded=False),
                 _exec(10.0, 25.0),
                 _exec(25.0, 30.0, succeeded=False)]
        assert failed_task_seconds(execs) == pytest.approx(15.0)
        assert failed_task_seconds(execs, now=12.0) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Job-level span emission and the monitor built on it
# ----------------------------------------------------------------------
class TestJobEvents:
    def test_spans_cover_every_execution(self, nr_job):
        stream = nr_job.events
        assert stream is not None
        assert len(stream.task_spans()) == len(nr_job.executions)
        kinds = {s.kind for s in stream.task_spans()}
        assert kinds == {"transfer", "combine"}

    def test_stage_and_iteration_spans(self, nr_job):
        stream = nr_job.events
        stages = stream.spans_of_kind("stage")
        iters = stream.spans_of_kind("iteration")
        assert len(stages) == stream.metrics.get("scheduler.stages") == 4
        assert len(iters) == stream.metrics.get("propagation.iterations") == 2
        # framing spans live on no machine
        assert all(s.machine == -1 for s in stages + iters)

    def test_metrics_registry_populated(self, nr_job):
        m = nr_job.events.metrics
        assert m.get("scheduler.tasks_executed") == len(nr_job.executions)
        assert m.get("network.bytes_total") == nr_job.metrics.network_bytes
        emitted = sum(r.messages_emitted for r in nr_job.reports)
        assert m.get("propagation.messages_emitted") == emitted

    def test_wall_clock_recorded(self, nr_job):
        assert nr_job.events.wall_seconds() > 0.0
        assert nr_job.events.metrics.get("wall.udf_seconds") > 0.0

    def test_monitor_from_events_matches_executions(self, nr_job):
        from_execs = JobMonitor(nr_job.executions)
        from_spans = JobMonitor.from_events(nr_job.events)
        assert from_spans.makespan == from_execs.makespan
        assert from_spans.stage_summary() == from_execs.stage_summary()
        assert ([u.busy_seconds for u in from_spans.machine_utilization()]
                == [u.busy_seconds for u in from_execs.machine_utilization()])

    def test_report_includes_metrics_section(self, nr_job):
        text = JobMonitor.from_events(nr_job.events).report()
        assert "metrics:" in text
        assert "network.bytes_total" in text

    def test_streams_are_per_job(self):
        surfer = small_surfer()
        prop_cls, __, __ = APP_REGISTRY["NR"]
        job1 = surfer.run_propagation(prop_cls(), iterations=1)
        count1 = job1.events.metrics.get("network.bytes_total")
        job2 = surfer.run_propagation(prop_cls(), iterations=1)
        # the first job's stream stayed frozen while the second ran
        assert job1.events.metrics.get("network.bytes_total") == count1
        assert job2.events is not job1.events


# ----------------------------------------------------------------------
# Reconciliation: span totals == cluster counters
# ----------------------------------------------------------------------
class TestReconciliation:
    def test_plain_propagation(self, nr_job):
        assert reconcile(nr_job) == []

    def test_mapreduce(self):
        surfer = small_surfer()
        __, mr_cls, __ = APP_REGISTRY["NR"]
        job = surfer.run_mapreduce(mr_cls(), rounds=2)
        assert reconcile(job) == []

    def test_machine_kill_with_re_replication(self):
        surfer = small_surfer(seed=3)
        prop_cls, __, __ = APP_REGISTRY["NR"]
        plan = FaultPlan(kills=[MachineKill(machine=2, time=5.0)])
        job = surfer.run_propagation(prop_cls(), iterations=3,
                                     fault_plan=plan)
        assert job.recovery_events, "fault plan should trigger recovery"
        assert reconcile(job) == []

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_speculation_and_transients(self, pipelined):
        surfer = small_surfer(seed=5)
        prop_cls, __, __ = APP_REGISTRY["NR"]
        plan = FaultPlan()
        plan.add_transient(1, 3.0, 4.0)
        plan.add_slowdown(3, 0.0, 1e9, 3.0)
        job = surfer.run_propagation(prop_cls(), iterations=3,
                                     fault_plan=plan, pipelined=pipelined,
                                     speculation=True)
        assert reconcile(job) == []

    def test_recovery_instants_mirror_events(self):
        surfer = small_surfer(seed=3)
        prop_cls, __, __ = APP_REGISTRY["NR"]
        plan = FaultPlan(kills=[MachineKill(machine=2, time=5.0)])
        job = surfer.run_propagation(prop_cls(), iterations=3,
                                     fault_plan=plan)
        assert len(job.events.instants) == len(job.recovery_events)
        kinds = {i.kind for i in job.events.instants}
        assert kinds == {ev.kind for ev in job.recovery_events}
        for kind in kinds:
            assert job.events.metrics.get(f"recovery.{kind}") == sum(
                1 for ev in job.recovery_events if ev.kind == kind
            )


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_round_trip_valid_json(self, nr_job, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(nr_job.events, path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["metrics"] == \
            nr_job.events.metrics.snapshot()

    def test_spans_monotonic_and_bounded(self, nr_job):
        doc = chrome_trace(nr_job.events)
        horizon = nr_job.events.makespan * 1e6
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(nr_job.events.spans)
        for e in slices:
            assert e["dur"] >= 0.0
            assert 0.0 <= e["ts"] <= horizon
            assert e["ts"] + e["dur"] <= horizon + 1e-6

    def test_one_lane_per_machine(self, nr_job):
        doc = chrome_trace(nr_job.events)
        lanes = {e["tid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"
                 and e["pid"] == 0}
        assert sorted(lanes) == nr_job.events.machines()
        # every machine-level slice rides a declared lane
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e["pid"] == 0:
                assert e["tid"] in lanes

    def test_run_level_spans_on_job_manager_pid(self, nr_job):
        doc = chrome_trace(nr_job.events)
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == 1}
        assert any(n.startswith("stage[") for n in names)
        assert any(n.startswith("iteration[") for n in names)

    def test_instants_exported(self):
        surfer = small_surfer(seed=3)
        prop_cls, __, __ = APP_REGISTRY["NR"]
        plan = FaultPlan(kills=[MachineKill(machine=2, time=5.0)])
        job = surfer.run_propagation(prop_cls(), iterations=2,
                                     fault_plan=plan)
        doc = chrome_trace(job.events)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(job.events.instants)
        assert all(e["s"] in ("t", "g") for e in instants)


# ----------------------------------------------------------------------
# Bench JSON
# ----------------------------------------------------------------------
class TestBenchJson:
    def test_job_record_fields(self, nr_job):
        rec = job_record(nr_job, wall_clock_s=1.5)
        assert set(rec) == set(RECORD_FIELDS)
        assert rec["makespan_s"] == pytest.approx(
            nr_job.metrics.response_time)
        assert rec["network_bytes"] == nr_job.metrics.network_bytes
        assert rec["tasks"] == len(nr_job.executions)
        assert rec["wall_clock_s"] == 1.5

    def test_write_load_round_trip(self, nr_job, tmp_path):
        path = tmp_path / "bench.json"
        doc = write_bench_json(path, {"w": job_record(nr_job, 0.1)})
        loaded = load_bench_json(path)
        assert loaded == doc
        assert loaded["schema"] == SCHEMA
        assert validate_bench_json(loaded) == []

    def test_validate_rejects_bad_documents(self, nr_job):
        rec = job_record(nr_job, 0.1)
        assert validate_bench_json("nope")
        assert validate_bench_json({"schema": "other/v9", "pr": "PR3",
                                    "workloads": {"w": rec}})
        assert validate_bench_json({"schema": SCHEMA, "pr": "",
                                    "workloads": {"w": rec}})
        assert validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                    "workloads": {}})
        missing = {k: v for k, v in rec.items() if k != "makespan_s"}
        assert validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                    "workloads": {"w": missing}})
        extra = dict(rec, bogus=1)
        assert validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                    "workloads": {"w": extra}})
        negative = dict(rec, network_bytes=-1)
        assert validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                    "workloads": {"w": negative}})
        stringy = dict(rec, tasks="many")
        assert validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                    "workloads": {"w": stringy}})

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json(tmp_path / "bad.json", {"w": {"nope": 1}})

    def test_validate_rejects_bools(self, nr_job):
        # bool is an int subclass; True must not pass as a measurement
        rec = job_record(nr_job, 0.1)
        boolish = dict(rec, tasks=True)
        errors = validate_bench_json({"schema": SCHEMA, "pr": "PR3",
                                      "workloads": {"w": boolish}})
        assert any("tasks" in e and "not a number" in e for e in errors)

    def test_messages_shipped_follows_the_engine(self, nr_job):
        # propagation job: the propagation counter, and it is live
        rec = job_record(nr_job, 0.1)
        registry = nr_job.events.metrics
        assert rec["messages_shipped"] == int(
            registry.get("propagation.messages_shipped"))
        assert rec["messages_shipped"] > 0

        # MapReduce job: the same registry family canonically registers
        # propagation.messages_shipped at 0, which used to mask the
        # fallback to mapreduce.map_records — the record must carry the
        # MR counter instead
        surfer = small_surfer()
        __, mr_cls, __ = APP_REGISTRY["NR"]
        mr_job = surfer.run_mapreduce(mr_cls(), rounds=2)
        mr_registry = mr_job.events.metrics
        assert mr_registry.get("propagation.messages_shipped") == 0
        mr_rec = job_record(mr_job, 0.1)
        assert mr_rec["messages_shipped"] == int(
            mr_registry.get("mapreduce.map_records"))
        assert mr_rec["messages_shipped"] > 0

    def test_messages_shipped_synthetic_registry_fallback(self, nr_job):
        # no engine marker at all (synthetic registries): old behaviour
        class FakeJob:
            metrics = nr_job.metrics

            class events:
                metrics = MetricsRegistry()

        FakeJob.events.metrics.add("mapreduce.map_records", 42)
        assert job_record(FakeJob, 0.1)["messages_shipped"] == 42


# ----------------------------------------------------------------------
# The None-transfer cost contract (scalar vs vectorized Transfer)
# ----------------------------------------------------------------------
class _State:
    def __init__(self):
        self.values = {}


class DroppingApp(PropagationApp):
    """Scalar transfer returns None for odd-parity edges.

    Such apps cannot express their transfer as ``transfer_array`` — the
    fast path has no per-edge None — so the base class (correctly)
    declines the fast path by not implementing the hook.
    """

    name = "dropping"

    def setup(self, pgraph):
        return _State()

    def transfer(self, u, v, state):
        return float(u) if (u + v) % 2 == 0 else None

    def combine(self, v, values, state):
        return sum(values)


class DecliningApp(DroppingApp):
    """Implements the hook but honours the contract by declining."""

    name = "declining"

    def transfer_array(self, src, dst, state):
        return None  # cannot express per-edge None: decline


class ViolatingApp(DroppingApp):
    """Breaks the contract: vectorizes a None-returning transfer by
    substituting 0.0 — the divergence this class exists to expose."""

    name = "violating"

    def transfer_array(self, src, dst, state):
        return np.where((src + dst) % 2 == 0, src.astype(float), 0.0)


class TestNoneTransferContract:
    """Pins the contract documented on ``PropagationApp.transfer_array``:
    apps whose scalar ``transfer`` may return None MUST decline the fast
    path, because the two paths' cost accounting (and routing) only
    coincide when every scanned edge routes a message."""

    def _run(self, app, vectorized):
        surfer = small_surfer(machines=4, parts=8)
        return surfer.run_propagation(app, iterations=1,
                                      vectorized=vectorized)

    @staticmethod
    def _sim_counters(stream):
        """Counters minus real wall-clock time (nondeterministic)."""
        return {k: v for k, v in stream.metrics.counters.items()
                if "wall" not in k}

    def test_declining_app_matches_scalar_oracle(self):
        oracle = self._run(DecliningApp(), vectorized=False)
        fallback = self._run(DecliningApp(), vectorized=None)
        assert fallback.result.values == oracle.result.values
        assert (fallback.events.stage_totals()
                == oracle.events.stage_totals())
        assert (self._sim_counters(fallback.events)
                == self._sim_counters(oracle.events))

    def test_declining_app_cannot_be_forced_vectorized(self):
        surfer = small_surfer(machines=4, parts=8)
        with pytest.raises(JobError):
            surfer.run_propagation(DecliningApp(), iterations=1,
                                   vectorized=True)

    def test_violation_diverges_messages_and_cpu(self):
        scalar = self._run(DroppingApp(), vectorized=False)
        violated = self._run(ViolatingApp(), vectorized=None)
        s_m = scalar.events.metrics
        v_m = violated.events.metrics
        # scalar routes only the non-None edges; the violating fast path
        # "routes" every scanned edge
        assert (v_m.get("propagation.messages_emitted")
                > s_m.get("propagation.messages_emitted"))
        # scalar charges edges_scanned + messages_routed; the fast path
        # charges 2 per scanned edge — more, since some edges drop
        s_cpu = scalar.events.stage_totals()["transfer"]["cpu_ops"]
        v_cpu = violated.events.stage_totals()["transfer"]["cpu_ops"]
        assert v_cpu > s_cpu
