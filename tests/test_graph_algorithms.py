"""Unit tests for the reference graph algorithms (the oracles)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.generators import grid, ring, star
from repro.graph.algorithms import (
    bfs_levels,
    count_triangles,
    degree_histogram,
    estimate_diameter,
    multi_source_bfs,
    pagerank,
    two_hop_neighbors,
    weakly_connected_components,
)


class TestBFS:
    def test_ring_distances(self):
        g = ring(5)
        dist = bfs_levels(g, 0)
        assert list(dist) == [0, 1, 2, 3, 4]

    def test_reverse_bfs(self):
        g = ring(5)
        dist = bfs_levels(g, 0, reverse=True)
        assert list(dist) == [0, 4, 3, 2, 1]

    def test_unreachable(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        dist = bfs_levels(g, 0)
        assert dist[2] == -1

    def test_multi_source(self):
        g = ring(6)
        dist = multi_source_bfs(g, [0, 3])
        assert list(dist) == [0, 1, 2, 0, 1, 2]

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            bfs_levels(ring(3), 5)


class TestComponents:
    def test_single_component(self):
        labels = weakly_connected_components(ring(4))
        assert len(set(labels)) == 1

    def test_two_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        labels = weakly_connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_direction_ignored(self):
        g = Graph.from_edges([(1, 0), (1, 2)], num_vertices=3)
        assert len(set(weakly_connected_components(g))) == 1


class TestDiameter:
    def test_ring_diameter(self):
        # undirected view of a 10-ring has diameter 5
        assert estimate_diameter(ring(10), num_probes=4) == 5

    def test_star_diameter(self):
        assert estimate_diameter(star(5), num_probes=4) == 2

    def test_empty(self):
        assert estimate_diameter(Graph.empty(0)) == 0

    def test_isolated(self):
        assert estimate_diameter(Graph.empty(4)) == 0


class TestPageRank:
    def test_sums_below_one_with_dangling_self(self):
        g = star(3)  # leaves dangle
        ranks = pagerank(g, num_iterations=10, dangling="self")
        assert ranks.sum() <= 1.0 + 1e-9

    def test_uniform_dangling_sums_to_one(self):
        g = star(3)
        ranks = pagerank(g, num_iterations=50, dangling="uniform")
        assert ranks.sum() == pytest.approx(1.0)

    def test_symmetric_ring_is_uniform(self):
        g = ring(8)
        ranks = pagerank(g, num_iterations=30)
        assert np.allclose(ranks, ranks[0])

    def test_hub_ranks_highest(self):
        g = star(6, out=False)  # all leaves point at 0
        ranks = pagerank(g, num_iterations=10)
        assert ranks[0] == ranks.max()
        assert ranks[0] > ranks[1]

    def test_rejects_bad_dangling(self):
        with pytest.raises(GraphError):
            pagerank(ring(3), dangling="drop")

    def test_empty_graph(self):
        assert pagerank(Graph.empty(0)).size == 0


class TestDegreeHistogram:
    def test_out_histogram(self):
        g = star(3)
        assert degree_histogram(g, "out") == {0: 3, 3: 1}

    def test_in_histogram(self):
        g = star(3)
        assert degree_histogram(g, "in") == {0: 1, 1: 3}

    def test_counts_cover_all_vertices(self, small_graph):
        hist = degree_histogram(small_graph)
        assert sum(hist.values()) == small_graph.num_vertices

    def test_rejects_bad_direction(self):
        with pytest.raises(GraphError):
            degree_histogram(ring(3), "sideways")


class TestTriangles:
    def test_directed_triangle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert count_triangles(g) == 1

    def test_mutual_edges_single_triangle(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]
        assert count_triangles(Graph.from_edges(edges)) == 1

    def test_no_triangles_in_ring(self):
        assert count_triangles(ring(5)) == 0

    def test_k4(self):
        edges = [(a, b) for a in range(4) for b in range(4) if a < b]
        assert count_triangles(Graph.from_edges(edges)) == 4

    def test_grid_has_no_triangles(self):
        assert count_triangles(grid(3, 3)) == 0


class TestTwoHop:
    def test_chain(self):
        g = Graph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        # vertex 2's in-neighbor is 1; 1 points at 2 -> {2}
        assert two_hop_neighbors(g, 2) == {2}
        # vertex 1's in-neighbor is 0; 0 points at 1 -> {1}
        assert two_hop_neighbors(g, 1) == {1}
        assert two_hop_neighbors(g, 0) == set()

    def test_push_semantics(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3)], num_vertices=4)
        # 1 receives 0's list {1, 2}
        assert two_hop_neighbors(g, 1) == {1, 2}
        # 3 receives 1's list {3}
        assert two_hop_neighbors(g, 3) == {3}


class TestTrianglesVectorizedParity:
    """The merge-based fast path must reproduce the per-vertex oracle."""

    def cases(self):
        from repro.graph.generators import erdos_renyi, rmat, small_world

        yield Graph.empty(5)
        yield ring(6)
        yield grid(4, 4)
        yield star(7)
        yield Graph.from_edges(
            [(a, b) for a in range(5) for b in range(5) if a != b],
            num_vertices=5)
        yield rmat(7, edge_factor=6, seed=3)
        yield erdos_renyi(60, 300, seed=1)
        yield small_world(80, k=5, rewire_p=0.2, seed=4)

    def test_matches_reference(self):
        from repro.graph.algorithms import _count_triangles_reference

        for g in self.cases():
            assert count_triangles(g) == _count_triangles_reference(g)
