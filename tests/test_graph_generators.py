"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    composite_social_graph,
    erdos_renyi,
    grid,
    ring,
    rmat,
    small_world,
    star,
)


class TestRmat:
    def test_sizes(self):
        g = rmat(scale=8, edge_factor=4, seed=1)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 4 * 256

    def test_deterministic(self):
        assert rmat(6, seed=5) == rmat(6, seed=5)

    def test_seed_changes_graph(self):
        assert rmat(6, seed=5) != rmat(6, seed=6)

    def test_no_self_loops(self):
        g = rmat(7, seed=2)
        src = g.edge_sources()
        assert not np.any(src == g.out_indices)

    def test_skewed_degrees(self):
        """R-MAT with a != d must produce a skewed degree distribution."""
        g = rmat(10, edge_factor=8, seed=3)
        deg = g.out_degrees()
        assert deg.max() > 4 * max(deg.mean(), 1)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat(4, a=0.9, b=0.9, c=0.9)

    def test_rejects_negative_scale(self):
        with pytest.raises(GraphError):
            rmat(-1)


class TestSmallWorld:
    def test_out_degree_without_rewiring(self):
        g = small_world(20, k=4, rewire_p=0.0)
        assert np.all(g.out_degrees() == 4)

    def test_rewiring_changes_edges(self):
        assert small_world(50, rewire_p=0.0, seed=1) != small_world(
            50, rewire_p=0.5, seed=1
        )

    def test_k_clamped_to_n(self):
        g = small_world(3, k=10, rewire_p=0.0)
        assert g.out_degrees().max() <= 2

    def test_rejects_bad_p(self):
        with pytest.raises(GraphError):
            small_world(10, rewire_p=1.5)


class TestComposite:
    def test_sizes(self):
        g = composite_social_graph(num_communities=4, community_size=32,
                                   seed=0)
        assert g.num_vertices == 128

    def test_deterministic(self):
        a = composite_social_graph(4, 32, seed=9)
        b = composite_social_graph(4, 32, seed=9)
        assert a == b

    def test_communities_dominate_edges(self):
        """With small p_r most edges stay inside their community."""
        g = composite_social_graph(8, 64, p_r=0.05, seed=1)
        src = g.edge_sources() // 64
        dst = g.out_indices // 64
        intra = np.count_nonzero(src == dst)
        assert intra / g.num_edges > 0.8

    def test_no_rewiring_keeps_all_intra(self):
        g = composite_social_graph(4, 32, p_r=0.0, seed=1)
        src = g.edge_sources() // 32
        dst = g.out_indices // 32
        assert np.all(src == dst)

    def test_small_world_model(self):
        g = composite_social_graph(4, 30, community_model="small-world",
                                   seed=1)
        assert g.num_vertices == 120

    def test_rejects_unknown_model(self):
        with pytest.raises(GraphError):
            composite_social_graph(2, 8, community_model="scale-free")

    def test_rejects_bad_ratio(self):
        with pytest.raises(GraphError):
            composite_social_graph(2, 8, p_r=2.0)


class TestSimpleShapes:
    def test_ring(self):
        g = ring(5)
        assert g.num_edges == 5
        assert g.has_edge(4, 0)

    def test_grid_degrees(self):
        g = grid(3, 3)
        center_deg = g.out_degree(4)
        assert center_deg == 4  # bidirected grid: center has 4 neighbors
        assert g.out_degree(0) == 2

    def test_star(self):
        g = star(4, out=True)
        assert g.out_degree(0) == 4
        g_in = star(4, out=False)
        assert g_in.in_degree(0) == 4

    def test_erdos_renyi_bounds(self):
        g = erdos_renyi(100, 300, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges <= 300

    def test_rejects_nonpositive(self):
        for fn in (ring, lambda n: grid(n, 2), lambda n: small_world(n)):
            with pytest.raises(GraphError):
                fn(0)
