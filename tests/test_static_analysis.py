"""The `repro check` gate: every rule positive + negative, suppression
semantics, contract verification on good and deliberately-broken apps,
counter conservation, and the self-lint (the tree itself must be clean).

Purity fixtures are source *strings* (never real classes subclassing
``PropagationApp``/``MapReduceApp`` with impure bodies) so that scanning
this test file with ``repro check tests`` stays clean.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.contracts import (
    check_array_parity,
    check_udf_purity,
    verify_mapreduce_app,
    verify_propagation_app,
    verify_registered_apps,
)
from repro.analysis.counters import (
    check_counter_uses,
    check_registry_coverage,
    collect_counter_uses,
)
from repro.analysis.determinism import lint_source
from repro.analysis.findings import (
    RULES,
    collect_suppressions,
    findings_to_json,
)
from repro.analysis.runner import check_paths
from repro.analysis.typing_gate import check_annotations
from repro.apps import (
    APP_REGISTRY,
    DegreeDistributionPropagation,
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
)
from repro.mapreduce.api import MapReduceApp

ENGINE = "src/repro/mapreduce/engine.py"


def rules_of(findings, active_only=True):
    return sorted({f.rule for f in findings
                   if not (active_only and f.suppressed)})


# ---------------------------------------------------------------------------
# DET001 — salted hash()/id() routing
# ---------------------------------------------------------------------------

class TestDet001:
    def test_bare_hash_in_engine_fails(self):
        # acceptance criterion: a bare hash() in mapreduce/engine.py
        # must fail the gate with DET001
        src = "def reducer_of(key, n):\n    return hash(key) % n\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET001"]

    def test_id_flagged(self):
        src = "def route(obj, n):\n    return id(obj) % n\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET001"]

    def test_dunder_hash_exempt(self):
        src = ("class K:\n"
               "    def __hash__(self):\n"
               "        return hash((self.a, self.b))\n")
        assert lint_source(src, "src/repro/graph/digraph.py") == []

    def test_stable_hash_clean(self):
        src = ("from repro.hashing import stable_hash\n"
               "def route(key, n):\n"
               "    return stable_hash(key) % n\n")
        assert lint_source(src, ENGINE) == []

    def test_out_of_package_not_flagged(self):
        assert lint_source("x = hash('a')\n", "scripts/tool.py") == []


# ---------------------------------------------------------------------------
# DET002 — unseeded randomness
# ---------------------------------------------------------------------------

class TestDet002:
    def test_stdlib_random_import_flagged(self):
        assert rules_of(lint_source("import random\n", ENGINE)) == \
            ["DET002"]
        assert rules_of(lint_source("from random import choice\n",
                                    ENGINE)) == ["DET002"]

    def test_legacy_numpy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET002"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, ENGINE) == []

    def test_bench_and_fault_plan_exempt(self):
        src = "import random\n"
        assert lint_source(src, "src/repro/bench/harness.py") == []
        assert lint_source(src, "src/repro/cluster/faults.py") == []


# ---------------------------------------------------------------------------
# DET003 — unordered set iteration on routing paths
# ---------------------------------------------------------------------------

class TestDet003:
    def test_set_literal_iteration_flagged(self):
        src = "def f(xs):\n    for x in {1, 2, 3}:\n        route(x)\n"
        assert rules_of(lint_source(
            src, "src/repro/partitioning/multilevel.py")) == ["DET003"]

    def test_set_variable_iteration_flagged(self):
        src = ("def f(xs):\n"
               "    pending = set(xs)\n"
               "    for x in pending:\n"
               "        route(x)\n")
        assert rules_of(lint_source(
            src, "src/repro/runtime/scheduler.py")) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        src = "def f(xs):\n    return [g(x) for x in set(xs)]\n"
        assert rules_of(lint_source(
            src, "src/repro/propagation/engine.py")) == ["DET003"]

    def test_sorted_wrapping_clean(self):
        src = ("def f(xs):\n"
               "    for x in sorted(set(xs)):\n"
               "        route(x)\n")
        assert lint_source(src, "src/repro/mapreduce/engine.py") == []

    def test_out_of_scope_tree_clean(self):
        src = "def f(xs):\n    for x in set(xs):\n        g(x)\n"
        assert lint_source(src, "src/repro/graph/analysis.py") == []


# ---------------------------------------------------------------------------
# DET004 — wall clock in simulated-time regions
# ---------------------------------------------------------------------------

class TestDet004:
    def test_time_time_flagged(self):
        src = "import time\nstart = time.time()\n"
        assert rules_of(lint_source(
            src, "src/repro/runtime/scheduler.py")) == ["DET004"]

    def test_from_import_alias_flagged(self):
        src = ("from time import perf_counter as pc\n"
               "def f():\n    return pc()\n")
        assert rules_of(lint_source(
            src, "src/repro/propagation/engine.py")) == ["DET004"]

    def test_events_module_is_the_sanctioned_clock(self):
        src = "import time\nx = time.perf_counter()\n"
        assert lint_source(src, "src/repro/runtime/events.py") == []

    def test_out_of_scope_clean(self):
        src = "import time\nx = time.time()\n"
        assert lint_source(src, "src/repro/bench/harness.py") == []


# ---------------------------------------------------------------------------
# Suppressions + parse errors
# ---------------------------------------------------------------------------

class TestSuppression:
    def test_matching_rule_suppressed_but_reported(self):
        src = ("def f(k, n):\n"
               "    return hash(k) % n  "
               "# repro: ignore[DET001] -- fixture\n")
        fs = lint_source(src, ENGINE)
        assert len(fs) == 1 and fs[0].suppressed

    def test_star_suppresses_everything(self):
        src = "import random  # repro: ignore[*] -- fixture\n"
        fs = lint_source(src, ENGINE)
        assert [f.suppressed for f in fs] == [True]

    def test_other_rule_marker_does_not_suppress(self):
        src = ("def f(k, n):\n"
               "    return hash(k) % n  "
               "# repro: ignore[DET004] -- wrong rule\n")
        fs = lint_source(src, ENGINE)
        assert [f.suppressed for f in fs] == [False]

    def test_marker_inside_string_ignored(self):
        src = 'msg = "# repro: ignore[DET001]"\n'
        assert collect_suppressions(src) == {}

    def test_syntax_error_reports_e999(self):
        fs = lint_source("def broken(:\n", ENGINE)
        assert rules_of(fs) == ["E999"]


# ---------------------------------------------------------------------------
# Counter conservation
# ---------------------------------------------------------------------------

class TestCounterConservation:
    def test_unregistered_counter_fails(self):
        # acceptance criterion: an unregistered counter must fail CNT001
        src = ("def g(metrics):\n"
               "    metrics.add('mapreduce.bogus_counter', 1)\n")
        uses = collect_counter_uses(src, ENGINE)
        assert rules_of(check_counter_uses(uses)) == ["CNT001"]

    def test_registered_counter_clean(self):
        src = "def g(metrics):\n    metrics.add('mapreduce.rounds')\n"
        uses = collect_counter_uses(src, ENGINE)
        assert check_counter_uses(uses) == []

    def test_dynamic_prefix_families(self):
        good = "def g(m, kind):\n    m.add(f'recovery.{kind}')\n"
        bad = "def g(m, kind):\n    m.add(f'mystery.{kind}')\n"
        assert check_counter_uses(
            collect_counter_uses(good, ENGINE)) == []
        assert rules_of(check_counter_uses(
            collect_counter_uses(bad, ENGINE))) == ["CNT001"]

    def test_dict_get_not_mistaken_for_counter(self):
        src = "def g(doc):\n    return doc.get('format_version')\n"
        assert collect_counter_uses(src, ENGINE) == []

    def test_outside_package_not_collected(self):
        src = "def g(metrics):\n    metrics.add('fake.counter')\n"
        assert collect_counter_uses(src, "tests/test_x.py") == []

    def test_registered_but_never_used_fails_cnt002(self):
        uses = collect_counter_uses(
            "def g(m):\n    m.add('a.used')\n", ENGINE)
        fs = check_registry_coverage(
            uses, registered={"a.used": "x", "a.orphan": "y"})
        assert rules_of(fs) == ["CNT002"]
        assert "a.orphan" in fs[0].message


# ---------------------------------------------------------------------------
# UDF001 — purity (string fixtures only; see module docstring)
# ---------------------------------------------------------------------------

class TestUdfPurity:
    def test_io_in_transfer_flagged(self):
        src = ("class A(PropagationApp):\n"
               "    def transfer(self, u, v, state):\n"
               "        print(u)\n"
               "        return 1.0\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_global_module_call_flagged(self):
        src = ("class A(MapReduceApp):\n"
               "    def map(self, p, pg, state, emit):\n"
               "        emit(0, random.random())\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_self_mutation_flagged(self):
        src = ("class A(PropagationApp):\n"
               "    def combine(self, v, values, state):\n"
               "        self.calls += 1\n"
               "        return sum(values)\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_pure_udf_and_non_udf_methods_clean(self):
        src = ("class A(PropagationApp):\n"
               "    def setup(self, pg):\n"
               "        self.cache = {}\n"  # setup is not a UDF
               "        return None\n"
               "    def transfer(self, u, v, state):\n"
               "        return state.values[u]\n")
        assert check_udf_purity(src, "src/repro/apps/a.py") == []

    def test_non_app_class_ignored(self):
        src = ("class Helper:\n"
               "    def transfer(self, u, v, state):\n"
               "        print(u)\n")
        assert check_udf_purity(src, "src/repro/apps/a.py") == []


# ---------------------------------------------------------------------------
# UDF002 / PAR001 — contracts
# ---------------------------------------------------------------------------

class _NonAssociativeCombine(NetworkRankingMapReduce):
    combine_ufunc = None

    def combine(self, key, values, state):
        acc = values[0]
        for v in values[1:]:
            acc = acc - v  # subtraction: neither associative nor comm.
        return acc


class _OrderSensitiveCombine(NetworkRankingPropagation):
    merge_ufunc = None
    is_associative = False

    def combine(self, v, values, state):
        return values[0]  # whichever message happened to arrive first


class TestContracts:
    def test_non_associative_combine_fails(self):
        # acceptance criterion: deliberately non-associative combine
        # must fail with UDF002
        fs = verify_mapreduce_app(_NonAssociativeCombine)
        assert rules_of(fs) == ["UDF002"]
        assert any("order-sensitive" in f.message
                   or "partials" in f.message for f in fs)

    def test_order_sensitive_propagation_combine_fails(self):
        fs = verify_propagation_app(_OrderSensitiveCombine)
        assert rules_of(fs) == ["UDF002"]

    def test_vdd_virtual_combine_path_verified(self):
        # the Section 3.3 virtual-vertex path must be exercised
        # explicitly (PR 4 wired it; this is its contract coverage)
        assert verify_propagation_app(DegreeDistributionPropagation) == []

    def test_registered_apps_all_pass(self):
        assert verify_registered_apps() == []

    def test_every_registry_app_reachable_by_harness(self):
        # guards the harness itself: every registered app must yield
        # multi-value bags on the contract graph (a silent harvest
        # failure would make the whole gate vacuous)
        for name, (prop_cls, mr_cls, _) in APP_REGISTRY.items():
            assert verify_propagation_app(prop_cls) == [], name
            assert verify_mapreduce_app(mr_cls) == [], name

    def test_array_hook_without_scalar_counterpart_fails(self):
        class ArrayOnly(MapReduceApp):
            name = "array-only"

            def map_array(self, partition, pgraph, state):
                return (np.zeros(0, dtype=np.int64), np.zeros(0))

        fs = check_array_parity([ArrayOnly], "ArrayOnly appears here")
        assert rules_of(fs) == ["PAR001"]
        assert "scalar counterpart" in fs[0].message

    def test_array_hook_without_parity_test_fails(self):
        class Unregistered(NetworkRankingMapReduce):
            pass

        fs = check_array_parity([Unregistered], "no mention of it")
        assert rules_of(fs) == ["PAR001"]
        assert "parity test" in fs[0].message

    def test_array_hook_with_parity_registration_clean(self):
        fs = check_array_parity(
            [NetworkRankingMapReduce],
            "matrix includes NetworkRankingMapReduce")
        assert fs == []


# ---------------------------------------------------------------------------
# TYP001 — strict-surface annotation completeness
# ---------------------------------------------------------------------------

class TestTypingGate:
    def test_missing_annotations_flagged_in_strict_module(self):
        src = "def f(a, b):\n    return a + b\n"
        fs = check_annotations(src, "src/repro/runtime/foo.py")
        assert rules_of(fs) == ["TYP001"]
        assert "a, b, return" in fs[0].message

    def test_annotated_def_clean(self):
        src = "def f(a: int, b: int) -> int:\n    return a + b\n"
        assert check_annotations(src, "src/repro/runtime/foo.py") == []

    def test_nested_closures_exempt(self):
        src = ("def f(a: int) -> int:\n"
               "    def emit(k, v):\n"
               "        pass\n"
               "    return a\n")
        assert check_annotations(src, "src/repro/mapreduce/foo.py") == []

    def test_non_strict_module_exempt(self):
        src = "def f(a, b):\n    return a + b\n"
        assert check_annotations(src, "src/repro/apps/foo.py") == []


# ---------------------------------------------------------------------------
# Runner + CLI + JSON document (self-lint acceptance)
# ---------------------------------------------------------------------------

class TestRunner:
    def test_self_lint_src_is_clean(self):
        # acceptance criterion: `repro check src/` runs clean
        report = check_paths(["src"], contracts_pass=False)
        assert report.active == [], report.render()
        assert report.exit_code == 0
        assert report.registry_audited  # src covers runtime/events.py

    def test_partial_scan_skips_registry_coverage(self):
        report = check_paths(["src/repro/apps"], contracts_pass=False)
        assert not report.registry_audited
        assert all(f.rule != "CNT002" for f in report.findings)

    def test_cli_check_subcommand(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "findings.json"
        assert main(["check", "src", "--no-contracts",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-check/v1"
        assert doc["counts"]["findings"] == 0
        assert set(doc["rules"]) == set(RULES)

    def test_findings_json_counts(self):
        fs = lint_source(
            "def f(k, n):\n    return hash(k) % n\n", ENGINE)
        doc = json.loads(findings_to_json(fs, meta={"paths": ["x"]}))
        assert doc["counts"] == {"findings": 1, "suppressed": 0}
        assert doc["findings"][0]["rule"] == "DET001"
