"""The `repro check` gate: every rule positive + negative, suppression
semantics, contract verification on good and deliberately-broken apps,
counter conservation, and the self-lint (the tree itself must be clean).

Purity fixtures are source *strings* (never real classes subclassing
``PropagationApp``/``MapReduceApp`` with impure bodies) so that scanning
this test file with ``repro check tests`` stays clean.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.contracts import (
    check_array_parity,
    check_udf_purity,
    verify_mapreduce_app,
    verify_propagation_app,
    verify_registered_apps,
)
from repro.analysis.counters import (
    check_counter_uses,
    check_registry_coverage,
    collect_counter_uses,
)
from repro.analysis.callgraph import build_project_index
from repro.analysis.determinism import lint_source
from repro.analysis.findings import (
    RULES,
    Finding,
    collect_suppressions,
    findings_to_json,
)
from repro.analysis.oocsafety import check_ooc_safety
from repro.analysis.runner import check_paths, check_stale_suppressions
from repro.analysis.taint import check_taint, compute_tainted
from repro.analysis.typing_gate import check_annotations
from repro.apps import (
    APP_REGISTRY,
    DegreeDistributionPropagation,
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
)
from repro.mapreduce.api import MapReduceApp

ENGINE = "src/repro/mapreduce/engine.py"


def rules_of(findings, active_only=True):
    return sorted({f.rule for f in findings
                   if not (active_only and f.suppressed)})


# ---------------------------------------------------------------------------
# DET001 — salted hash()/id() routing
# ---------------------------------------------------------------------------

class TestDet001:
    def test_bare_hash_in_engine_fails(self):
        # acceptance criterion: a bare hash() in mapreduce/engine.py
        # must fail the gate with DET001
        src = "def reducer_of(key, n):\n    return hash(key) % n\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET001"]

    def test_id_flagged(self):
        src = "def route(obj, n):\n    return id(obj) % n\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET001"]

    def test_dunder_hash_exempt(self):
        src = ("class K:\n"
               "    def __hash__(self):\n"
               "        return hash((self.a, self.b))\n")
        assert lint_source(src, "src/repro/graph/digraph.py") == []

    def test_stable_hash_clean(self):
        src = ("from repro.hashing import stable_hash\n"
               "def route(key, n):\n"
               "    return stable_hash(key) % n\n")
        assert lint_source(src, ENGINE) == []

    def test_out_of_package_not_flagged(self):
        assert lint_source("x = hash('a')\n", "scripts/tool.py") == []


# ---------------------------------------------------------------------------
# DET002 — unseeded randomness
# ---------------------------------------------------------------------------

class TestDet002:
    def test_stdlib_random_import_flagged(self):
        assert rules_of(lint_source("import random\n", ENGINE)) == \
            ["DET002"]
        assert rules_of(lint_source("from random import choice\n",
                                    ENGINE)) == ["DET002"]

    def test_legacy_numpy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, ENGINE)) == ["DET002"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, ENGINE) == []

    def test_bench_and_fault_plan_exempt(self):
        src = "import random\n"
        assert lint_source(src, "src/repro/bench/harness.py") == []
        assert lint_source(src, "src/repro/cluster/faults.py") == []


# ---------------------------------------------------------------------------
# DET003 — unordered set iteration on routing paths
# ---------------------------------------------------------------------------

class TestDet003:
    def test_set_literal_iteration_flagged(self):
        src = "def f(xs):\n    for x in {1, 2, 3}:\n        route(x)\n"
        assert rules_of(lint_source(
            src, "src/repro/partitioning/multilevel.py")) == ["DET003"]

    def test_set_variable_iteration_flagged(self):
        src = ("def f(xs):\n"
               "    pending = set(xs)\n"
               "    for x in pending:\n"
               "        route(x)\n")
        assert rules_of(lint_source(
            src, "src/repro/runtime/scheduler.py")) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        src = "def f(xs):\n    return [g(x) for x in set(xs)]\n"
        assert rules_of(lint_source(
            src, "src/repro/propagation/engine.py")) == ["DET003"]

    def test_sorted_wrapping_clean(self):
        src = ("def f(xs):\n"
               "    for x in sorted(set(xs)):\n"
               "        route(x)\n")
        assert lint_source(src, "src/repro/mapreduce/engine.py") == []

    def test_out_of_scope_tree_clean(self):
        src = "def f(xs):\n    for x in set(xs):\n        g(x)\n"
        assert lint_source(src, "src/repro/graph/analysis.py") == []


# ---------------------------------------------------------------------------
# DET004 — wall clock in simulated-time regions
# ---------------------------------------------------------------------------

class TestDet004:
    def test_time_time_flagged(self):
        src = "import time\nstart = time.time()\n"
        assert rules_of(lint_source(
            src, "src/repro/runtime/scheduler.py")) == ["DET004"]

    def test_from_import_alias_flagged(self):
        src = ("from time import perf_counter as pc\n"
               "def f():\n    return pc()\n")
        assert rules_of(lint_source(
            src, "src/repro/propagation/engine.py")) == ["DET004"]

    def test_events_module_is_the_sanctioned_clock(self):
        src = "import time\nx = time.perf_counter()\n"
        assert lint_source(src, "src/repro/runtime/events.py") == []

    def test_out_of_scope_clean(self):
        src = "import time\nx = time.time()\n"
        assert lint_source(src, "src/repro/bench/harness.py") == []


# ---------------------------------------------------------------------------
# Suppressions + parse errors
# ---------------------------------------------------------------------------

class TestSuppression:
    def test_matching_rule_suppressed_but_reported(self):
        src = ("def f(k, n):\n"
               "    return hash(k) % n  "
               "# repro: ignore[DET001] -- fixture\n")
        fs = lint_source(src, ENGINE)
        assert len(fs) == 1 and fs[0].suppressed

    def test_star_suppresses_everything(self):
        src = "import random  # repro: ignore[*] -- fixture\n"
        fs = lint_source(src, ENGINE)
        assert [f.suppressed for f in fs] == [True]

    def test_other_rule_marker_does_not_suppress(self):
        src = ("def f(k, n):\n"
               "    return hash(k) % n  "
               "# repro: ignore[DET004] -- wrong rule\n")
        fs = lint_source(src, ENGINE)
        assert [f.suppressed for f in fs] == [False]

    def test_marker_inside_string_ignored(self):
        src = 'msg = "# repro: ignore[DET001]"\n'
        assert collect_suppressions(src) == {}

    def test_syntax_error_reports_e999(self):
        fs = lint_source("def broken(:\n", ENGINE)
        assert rules_of(fs) == ["E999"]


# ---------------------------------------------------------------------------
# Counter conservation
# ---------------------------------------------------------------------------

class TestCounterConservation:
    def test_unregistered_counter_fails(self):
        # acceptance criterion: an unregistered counter must fail CNT001
        src = ("def g(metrics):\n"
               "    metrics.add('mapreduce.bogus_counter', 1)\n")
        uses = collect_counter_uses(src, ENGINE)
        assert rules_of(check_counter_uses(uses)) == ["CNT001"]

    def test_registered_counter_clean(self):
        src = "def g(metrics):\n    metrics.add('mapreduce.rounds')\n"
        uses = collect_counter_uses(src, ENGINE)
        assert check_counter_uses(uses) == []

    def test_dynamic_prefix_families(self):
        good = "def g(m, kind):\n    m.add(f'recovery.{kind}')\n"
        bad = "def g(m, kind):\n    m.add(f'mystery.{kind}')\n"
        assert check_counter_uses(
            collect_counter_uses(good, ENGINE)) == []
        assert rules_of(check_counter_uses(
            collect_counter_uses(bad, ENGINE))) == ["CNT001"]

    def test_dict_get_not_mistaken_for_counter(self):
        src = "def g(doc):\n    return doc.get('format_version')\n"
        assert collect_counter_uses(src, ENGINE) == []

    def test_outside_package_not_collected(self):
        src = "def g(metrics):\n    metrics.add('fake.counter')\n"
        assert collect_counter_uses(src, "tests/test_x.py") == []

    def test_registered_but_never_used_fails_cnt002(self):
        uses = collect_counter_uses(
            "def g(m):\n    m.add('a.used')\n", ENGINE)
        fs = check_registry_coverage(
            uses, registered={"a.used": "x", "a.orphan": "y"})
        assert rules_of(fs) == ["CNT002"]
        assert "a.orphan" in fs[0].message


# ---------------------------------------------------------------------------
# UDF001 — purity (string fixtures only; see module docstring)
# ---------------------------------------------------------------------------

class TestUdfPurity:
    def test_io_in_transfer_flagged(self):
        src = ("class A(PropagationApp):\n"
               "    def transfer(self, u, v, state):\n"
               "        print(u)\n"
               "        return 1.0\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_global_module_call_flagged(self):
        src = ("class A(MapReduceApp):\n"
               "    def map(self, p, pg, state, emit):\n"
               "        emit(0, random.random())\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_self_mutation_flagged(self):
        src = ("class A(PropagationApp):\n"
               "    def combine(self, v, values, state):\n"
               "        self.calls += 1\n"
               "        return sum(values)\n")
        assert rules_of(check_udf_purity(src, "src/repro/apps/a.py")) \
            == ["UDF001"]

    def test_pure_udf_and_non_udf_methods_clean(self):
        src = ("class A(PropagationApp):\n"
               "    def setup(self, pg):\n"
               "        self.cache = {}\n"  # setup is not a UDF
               "        return None\n"
               "    def transfer(self, u, v, state):\n"
               "        return state.values[u]\n")
        assert check_udf_purity(src, "src/repro/apps/a.py") == []

    def test_non_app_class_ignored(self):
        src = ("class Helper:\n"
               "    def transfer(self, u, v, state):\n"
               "        print(u)\n")
        assert check_udf_purity(src, "src/repro/apps/a.py") == []


# ---------------------------------------------------------------------------
# UDF002 / PAR001 — contracts
# ---------------------------------------------------------------------------

class _NonAssociativeCombine(NetworkRankingMapReduce):
    combine_ufunc = None

    def combine(self, key, values, state):
        acc = values[0]
        for v in values[1:]:
            acc = acc - v  # subtraction: neither associative nor comm.
        return acc


class _OrderSensitiveCombine(NetworkRankingPropagation):
    merge_ufunc = None
    is_associative = False

    def combine(self, v, values, state):
        return values[0]  # whichever message happened to arrive first


class TestContracts:
    def test_non_associative_combine_fails(self):
        # acceptance criterion: deliberately non-associative combine
        # must fail with UDF002
        fs = verify_mapreduce_app(_NonAssociativeCombine)
        assert rules_of(fs) == ["UDF002"]
        assert any("order-sensitive" in f.message
                   or "partials" in f.message for f in fs)

    def test_order_sensitive_propagation_combine_fails(self):
        fs = verify_propagation_app(_OrderSensitiveCombine)
        assert rules_of(fs) == ["UDF002"]

    def test_vdd_virtual_combine_path_verified(self):
        # the Section 3.3 virtual-vertex path must be exercised
        # explicitly (PR 4 wired it; this is its contract coverage)
        assert verify_propagation_app(DegreeDistributionPropagation) == []

    def test_registered_apps_all_pass(self):
        assert verify_registered_apps() == []

    def test_every_registry_app_reachable_by_harness(self):
        # guards the harness itself: every registered app must yield
        # multi-value bags on the contract graph (a silent harvest
        # failure would make the whole gate vacuous)
        for name, (prop_cls, mr_cls, _) in APP_REGISTRY.items():
            assert verify_propagation_app(prop_cls) == [], name
            assert verify_mapreduce_app(mr_cls) == [], name

    def test_array_hook_without_scalar_counterpart_fails(self):
        class ArrayOnly(MapReduceApp):
            name = "array-only"

            def map_array(self, partition, pgraph, state):
                return (np.zeros(0, dtype=np.int64), np.zeros(0))

        fs = check_array_parity([ArrayOnly], "ArrayOnly appears here")
        assert rules_of(fs) == ["PAR001"]
        assert "scalar counterpart" in fs[0].message

    def test_array_hook_without_parity_test_fails(self):
        class Unregistered(NetworkRankingMapReduce):
            pass

        fs = check_array_parity([Unregistered], "no mention of it")
        assert rules_of(fs) == ["PAR001"]
        assert "parity test" in fs[0].message

    def test_array_hook_with_parity_registration_clean(self):
        fs = check_array_parity(
            [NetworkRankingMapReduce],
            "matrix includes NetworkRankingMapReduce")
        assert fs == []


# ---------------------------------------------------------------------------
# TYP001 — strict-surface annotation completeness
# ---------------------------------------------------------------------------

class TestTypingGate:
    def test_missing_annotations_flagged_in_strict_module(self):
        src = "def f(a, b):\n    return a + b\n"
        fs = check_annotations(src, "src/repro/runtime/foo.py")
        assert rules_of(fs) == ["TYP001"]
        assert "a, b, return" in fs[0].message

    def test_annotated_def_clean(self):
        src = "def f(a: int, b: int) -> int:\n    return a + b\n"
        assert check_annotations(src, "src/repro/runtime/foo.py") == []

    def test_nested_closures_exempt(self):
        src = ("def f(a: int) -> int:\n"
               "    def emit(k, v):\n"
               "        pass\n"
               "    return a\n")
        assert check_annotations(src, "src/repro/mapreduce/foo.py") == []

    def test_non_strict_module_exempt(self):
        src = "def f(a, b):\n    return a + b\n"
        assert check_annotations(src, "src/repro/apps/foo.py") == []


# ---------------------------------------------------------------------------
# DET005/DET006 — interprocedural taint over the project call graph
# ---------------------------------------------------------------------------

def taint_findings(sources):
    return check_taint(build_project_index(sources), sources)


KEYS = "src/repro/util/keys.py"
ROUTE = "src/repro/core/route.py"


class TestDet005:
    def test_laundered_hash_reaches_call_site(self):
        # the classic hole DET001 alone cannot see: the source lives in
        # an unscoped utility module, the call site in engine scope
        fs = taint_findings({
            KEYS: "def fresh_key(obj):\n    return hash(obj)\n",
            ROUTE: ("from repro.util.keys import fresh_key\n"
                    "\n"
                    "def route(msg, n):\n"
                    "    return fresh_key(msg) % n\n"),
        })
        assert rules_of(fs) == ["DET005"]
        (f,) = fs
        assert f.path == ROUTE and f.line == 4
        assert "fresh_key" in f.message

    def test_transitive_chain_keeps_root_reason(self):
        fs = taint_findings({
            KEYS: ("def raw(obj):\n"
                   "    return hash(obj)\n"
                   "\n"
                   "def launder(obj):\n"
                   "    return raw(obj) + 1\n"),
            ROUTE: ("from repro.util.keys import launder\n"
                    "\n"
                    "def route(msg):\n"
                    "    return launder(msg)\n"),
        })
        assert any(f.rule == "DET005" and "hash()" in f.message
                   for f in fs)

    def test_suppressed_source_does_not_taint(self):
        # a reviewed, waived source is by definition not laundered
        fs = taint_findings({
            KEYS: ("def fresh_key(obj):\n"
                   "    return hash(obj)"
                   "  # repro: ignore[DET001] -- reviewed\n"),
            ROUTE: ("from repro.util.keys import fresh_key\n"
                    "\n"
                    "def route(msg, n):\n"
                    "    return fresh_key(msg) % n\n"),
        })
        assert fs == []

    def test_out_of_scope_caller_not_flagged(self):
        fs = taint_findings({
            KEYS: "def fresh_key(obj):\n    return hash(obj)\n",
            "src/repro/bench/use.py": (
                "from repro.util.keys import fresh_key\n"
                "\n"
                "def label(msg):\n"
                "    return fresh_key(msg)\n"),
        })
        assert fs == []

    def test_dunder_hash_exempt_end_to_end(self):
        fs = taint_findings({
            ROUTE: ("def key_of(obj):\n"
                    "    return hash(obj)\n"
                    "\n"
                    "class K:\n"
                    "    def __hash__(self):\n"
                    "        return key_of(self)\n"),
        })
        assert all(f.rule != "DET005" for f in fs)

    def test_compute_tainted_reports_reason_chain(self):
        index = build_project_index({
            KEYS: ("def raw(obj):\n"
                   "    return hash(obj)\n"
                   "\n"
                   "def launder(obj):\n"
                   "    return raw(obj)\n"),
        })
        tainted = compute_tainted(index)
        assert "process-salted" in tainted["repro.util.keys.raw"]
        assert tainted["repro.util.keys.launder"].startswith(
            "via repro.util.keys.raw:")


class TestDet006:
    def test_wall_clock_default_flagged_package_wide(self):
        # util/ is outside every DET scope, but an import-time default
        # freezes per process — flagged anywhere in the package
        fs = taint_findings({
            KEYS: ("import time\n"
                   "\n"
                   "def stamp(t=time.time()):\n"
                   "    return t\n"),
        })
        assert "DET006" in rules_of(fs)

    def test_default_calling_tainted_function_flagged(self):
        fs = taint_findings({
            KEYS: ("def fresh():\n"
                   "    return hash(object())\n"
                   "\n"
                   "def g(k=fresh()):\n"
                   "    return k\n"),
        })
        assert any(f.rule == "DET006" and "fresh" in f.message
                   for f in fs)

    def test_keyword_only_defaults_covered(self):
        fs = taint_findings({
            KEYS: ("import time\n"
                   "\n"
                   "def stamp(*, t=time.time()):\n"
                   "    return t\n"),
        })
        assert "DET006" in rules_of(fs)

    def test_none_default_clean(self):
        fs = taint_findings({
            KEYS: ("import time\n"
                   "\n"
                   "def stamp(t=None):\n"
                   "    return time.time() if t is None else t\n"),
        })
        assert all(f.rule != "DET006" for f in fs)


# ---------------------------------------------------------------------------
# OOC001–OOC003 — out-of-core safety
# ---------------------------------------------------------------------------

USE = "src/repro/graph/use.py"


class TestOoc001:
    def test_asarray_over_memmap_flagged(self):
        src = ("import numpy as np\n"
               "\n"
               "def load(path):\n"
               "    a = np.load(path, mmap_mode='r')\n"
               "    return np.asarray(a)\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC001"]

    def test_tolist_on_shard_accessor_flagged(self):
        src = ("def dump(store, s):\n"
               "    view = store.shard_indices(s)\n"
               "    return view.tolist()\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC001"]

    def test_eager_load_and_plain_arrays_clean(self):
        src = ("import numpy as np\n"
               "\n"
               "def load(path):\n"
               "    a = np.load(path)\n"
               "    b = np.zeros(4)\n"
               "    return np.asarray(a) + np.asarray(b)\n")
        assert check_ooc_safety(src, USE) == []

    def test_waiver_honoured(self):
        src = ("import numpy as np\n"
               "\n"
               "def to_graph(path):\n"
               "    a = np.load(path, mmap_mode='r')\n"
               "    return np.asarray(a)"
               "  # repro: ignore[OOC001] -- documented O(m) point\n")
        fs = check_ooc_safety(src, USE)
        assert [f.rule for f in fs] == ["OOC001"]
        assert fs[0].suppressed

    def test_out_of_package_not_scanned(self):
        src = ("import numpy as np\n"
               "\n"
               "def f(p):\n"
               "    return np.asarray(np.load(p, mmap_mode='r'))\n")
        assert check_ooc_safety(src, "scripts/tool.py") == []


class TestOoc002:
    def test_write_into_ro_memmap_flagged(self):
        src = ("import numpy as np\n"
               "\n"
               "def patch(path):\n"
               "    a = np.load(path, mmap_mode='r')\n"
               "    a[0] = 1\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC002"]

    def test_write_into_shard_view_flagged(self):
        src = ("def zero(store, s):\n"
               "    view = store.shard_indptr(s)\n"
               "    view[:] = 0\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC002"]

    def test_write_through_rw_memmap_clean(self):
        src = ("import numpy as np\n"
               "\n"
               "def build(path):\n"
               "    a = np.memmap(path, dtype='int64', mode='w+',\n"
               "                  shape=(4,))\n"
               "    a[0] = 1\n")
        assert check_ooc_safety(src, USE) == []


class TestOoc003:
    def test_store_holder_without_guard_flagged(self):
        src = ("class Bad(Graph):\n"
               "    def __init__(self, store):\n"
               "        self.store = store\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC003"]

    def test_non_raising_accessor_flagged(self):
        src = ("class Bad(Graph):\n"
               "    def __init__(self, store):\n"
               "        self.store = store\n"
               "\n"
               "    def out_indices(self):\n"
               "        return self.store.everything()\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC003"]

    def test_raising_guard_clean(self):
        src = ("class Good(Graph):\n"
               "    def __init__(self, store):\n"
               "        self.store = store\n"
               "\n"
               "    @property\n"
               "    def out_indices(self):\n"
               "        raise GraphError('use out_indices_range')\n")
        assert check_ooc_safety(src, USE) == []

    def test_shard_backed_subclass_inherits_guard(self):
        src = ("class Derived(ShardBackedGraph):\n"
               "    def extra(self):\n"
               "        return 1\n")
        assert check_ooc_safety(src, USE) == []

    def test_shard_backed_subclass_unguarding_flagged(self):
        src = ("class Derived(ShardBackedGraph):\n"
               "    def out_indices(self):\n"
               "        return self.store.everything()\n")
        assert rules_of(check_ooc_safety(src, USE)) == ["OOC003"]


# ---------------------------------------------------------------------------
# SUP001 — stale suppression markers
# ---------------------------------------------------------------------------

class TestSup001:
    def test_live_marker_not_stale(self):
        findings = [Finding("DET001", "x.py", 3, "m", suppressed=True)]
        assert check_stale_suppressions(
            findings, {"x.py": {3: {"DET001"}}}) == []

    def test_stale_marker_flagged(self):
        fs = check_stale_suppressions([], {"x.py": {3: {"DET001"}}})
        assert [f.rule for f in fs] == ["SUP001"]
        assert fs[0].path == "x.py" and fs[0].line == 3
        assert not fs[0].suppressed

    def test_stale_star_marker_flagged(self):
        fs = check_stale_suppressions([], {"x.py": {3: {"*"}}})
        assert [f.rule for f in fs] == ["SUP001"]

    def test_star_cannot_waive_its_own_staleness(self):
        fs = check_stale_suppressions([], {"x.py": {3: {"*"}}})
        assert not fs[0].suppressed

    def test_explicit_sup001_marker_waives(self):
        fs = check_stale_suppressions(
            [], {"x.py": {3: {"DET001", "SUP001"}}})
        assert [f.rule for f in fs] == ["SUP001"]
        assert fs[0].suppressed

    def test_end_to_end_stale_marker_fails_gate(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text(
            "X = 1  # repro: ignore[DET001] -- nothing fires here\n")
        report = check_paths([str(tmp_path)], contracts_pass=False)
        assert rules_of(report.active) == ["SUP001"]
        assert report.exit_code == 1

    def test_in_tree_markers_are_all_live(self):
        # every committed `# repro: ignore[...]` must still suppress a
        # real finding — the self-lint would fail on a stale one
        report = check_paths(["src"], contracts_pass=False)
        assert all(f.rule != "SUP001" for f in report.findings)
        suppressed_paths = {f.path for f in report.findings
                            if f.suppressed}
        assert "src/repro/runtime/checkpoint.py" in suppressed_paths
        assert "src/repro/bench/workloads.py" in suppressed_paths
        assert "src/repro/graph/store.py" in suppressed_paths


# ---------------------------------------------------------------------------
# Runner + CLI + JSON document (self-lint acceptance)
# ---------------------------------------------------------------------------

class TestRunner:
    def test_self_lint_src_is_clean(self):
        # acceptance criterion: `repro check src/` runs clean
        report = check_paths(["src"], contracts_pass=False)
        assert report.active == [], report.render()
        assert report.exit_code == 0
        assert report.registry_audited  # src covers runtime/events.py

    def test_partial_scan_skips_registry_coverage(self):
        report = check_paths(["src/repro/apps"], contracts_pass=False)
        assert not report.registry_audited
        assert all(f.rule != "CNT002" for f in report.findings)

    def test_cli_check_subcommand(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "findings.json"
        assert main(["check", "src", "--no-contracts",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-check/v1"
        assert doc["counts"]["findings"] == 0
        assert set(doc["rules"]) == set(RULES)

    def test_cli_check_json_reports_failures(self, tmp_path):
        from repro.cli import main

        pkg = tmp_path / "repro" / "mapreduce"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def route(k, n):\n    return hash(k) % n\n")
        out = tmp_path / "findings.json"
        assert main(["check", str(tmp_path), "--no-contracts",
                     "--json", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-check/v1"
        assert doc["counts"]["findings"] >= 1
        assert "DET001" in {f["rule"] for f in doc["findings"]}
        # the documented rule set includes the v2 families
        assert {"DET005", "DET006", "OOC001", "OOC002", "OOC003",
                "SUP001"} <= set(doc["rules"])

    def test_findings_json_counts(self):
        fs = lint_source(
            "def f(k, n):\n    return hash(k) % n\n", ENGINE)
        doc = json.loads(findings_to_json(fs, meta={"paths": ["x"]}))
        assert doc["counts"] == {"findings": 1, "suppressed": 0}
        assert doc["findings"][0]["rule"] == "DET001"
