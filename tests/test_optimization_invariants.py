"""Cross-cutting invariants: optimization levels never change results,
faults never change results, and I/O orderings hold for every app."""

import numpy as np
import pytest

from repro.apps import APP_ORDER, APP_REGISTRY
from repro.cluster.faults import FaultPlan
from repro.core.surfer import Surfer
from tests.conftest import make_test_cluster


def _results_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return np.allclose(a, b)
    from repro.graph.digraph import Graph
    if isinstance(a, Graph):
        return a == b
    return a == b


def make_app(name, select_ratio=None):
    prop_cls, __, ___ = APP_REGISTRY[name]
    if name in ("TC", "TFL"):
        return prop_cls(select_ratio=select_ratio or 1.0)
    return prop_cls()


@pytest.fixture(scope="module")
def surfers(tiny_graph):
    return {
        layout: Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                       layout=layout, seed=8)
        for layout in ("bandwidth-aware", "oblivious")
    }


class TestResultsInvariant:
    @pytest.mark.parametrize("app_name", APP_ORDER)
    def test_same_result_across_all_levels(self, app_name, surfers):
        iters = APP_REGISTRY[app_name][2]
        results = []
        for layout in ("oblivious", "bandwidth-aware"):
            for local_opts in (False, True):
                job = surfers[layout].run_propagation(
                    make_app(app_name), iterations=iters,
                    local_opts=local_opts,
                )
                results.append(job.result)
        for other in results[1:]:
            assert _results_equal(results[0], other), app_name


class TestIoOrderings:
    @pytest.mark.parametrize("app_name", APP_ORDER)
    def test_local_opts_never_increase_io(self, app_name, surfers):
        iters = APP_REGISTRY[app_name][2]
        surfer = surfers["bandwidth-aware"]
        off = surfer.run_propagation(make_app(app_name), iterations=iters,
                                     local_opts=False)
        on = surfer.run_propagation(make_app(app_name), iterations=iters,
                                    local_opts=True)
        assert on.metrics.network_bytes <= off.metrics.network_bytes
        assert on.metrics.disk_bytes <= off.metrics.disk_bytes

    @pytest.mark.parametrize("app_name", ("NR", "RLG", "TFL"))
    def test_colocated_layout_cuts_traffic(self, app_name, surfers):
        """Edge-oriented apps ship less under the sketch layout."""
        iters = APP_REGISTRY[app_name][2]
        jobs = {
            layout: surfers[layout].run_propagation(
                make_app(app_name), iterations=iters, local_opts=True
            )
            for layout in surfers
        }
        assert (jobs["bandwidth-aware"].metrics.network_bytes
                <= jobs["oblivious"].metrics.network_bytes)


class TestFaultsInvariant:
    @pytest.mark.parametrize("app_name", ("NR", "RLG"))
    def test_propagation_result_survives_failure(self, tiny_graph,
                                                 app_name):
        iters = max(2, APP_REGISTRY[app_name][2])
        normal = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8).run_propagation(make_app(app_name),
                                                iterations=iters)
        kill_at = 0.4 * normal.metrics.response_time
        surfer = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8)
        victim = int(surfer.store.primary(0))
        faulty = surfer.run_propagation(
            make_app(app_name), iterations=iters,
            fault_plan=FaultPlan().add_kill(victim, kill_at),
        )
        assert _results_equal(normal.result, faulty.result)
        assert faulty.metrics.response_time >= normal.metrics.response_time

    def test_mapreduce_result_survives_failure(self, tiny_graph):
        from repro.apps import NetworkRankingMapReduce
        normal = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8).run_mapreduce(NetworkRankingMapReduce(),
                                              rounds=2)
        kill_at = 0.4 * normal.metrics.response_time
        surfer = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8)
        victim = int(surfer.store.primary(0))
        faulty = surfer.run_mapreduce(
            NetworkRankingMapReduce(), rounds=2,
            fault_plan=FaultPlan().add_kill(victim, kill_at),
        )
        assert np.allclose(normal.result, faulty.result)

    def test_cascaded_run_survives_failure(self, tiny_graph):
        from repro.apps import NetworkRankingPropagation
        normal = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8).run_propagation(
            NetworkRankingPropagation(), iterations=3, cascaded=True)
        surfer = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=8)
        victim = int(surfer.store.primary(1))
        faulty = surfer.run_propagation(
            NetworkRankingPropagation(), iterations=3, cascaded=True,
            fault_plan=FaultPlan().add_kill(
                victim, 0.3 * normal.metrics.response_time),
        )
        assert np.allclose(normal.result, faulty.result)

    def test_two_failures(self, tiny_graph):
        from repro.apps import NetworkRankingPropagation
        normal = Surfer(tiny_graph, make_test_cluster(6), num_parts=8,
                        seed=8).run_propagation(
            NetworkRankingPropagation(), iterations=2)
        surfer = Surfer(tiny_graph, make_test_cluster(6), num_parts=8,
                        seed=8)
        span = normal.metrics.response_time
        plan = (FaultPlan()
                .add_kill(0, 0.2 * span)
                .add_kill(1, 0.5 * span))
        faulty = surfer.run_propagation(NetworkRankingPropagation(),
                                        iterations=2, fault_plan=plan)
        assert np.allclose(normal.result, faulty.result)
        assert len(surfer.cluster.alive_machines()) == 4
