"""Tests for the opt-in pipelined (flow-shop) executor."""

import numpy as np
import pytest

from repro.apps import NetworkRankingPropagation, NetworkRankingMapReduce
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.spec import MachineSpec
from repro.cluster.topology import t1
from repro.core.surfer import Surfer
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import Task
from tests.conftest import make_test_cluster


def flat_cluster():
    spec = MachineSpec(disk_read_bps=100.0, disk_write_bps=100.0,
                       cpu_ops_per_sec=100.0, nic_bps=100.0)
    return Cluster(t1(2, link_bps=100.0), machine_spec=spec)


class TestPipelinedScheduler:
    def test_phases_overlap_across_tasks(self):
        """Two read+write tasks: task 2's read overlaps task 1's write."""
        cluster = flat_cluster()
        sched = StageScheduler(cluster, pipelined=True)
        tasks = [Task(f"t{i}", machine=0, disk_read_bytes=100,
                      disk_write_bytes=100) for i in range(2)]
        result = sched.run_stage(tasks)
        # serial: 4s; pipelined: read1(1) write1(1)||read2(1) write2(1) = 3s
        assert result.elapsed == pytest.approx(3.0)

    def test_single_task_unchanged(self):
        cluster = flat_cluster()
        serial = StageScheduler(cluster)
        t = Task("t", machine=0, disk_read_bytes=100, cpu_ops=100,
                 disk_write_bytes=100)
        a = serial.run_stage([t]).elapsed
        cluster.reset()
        piped = StageScheduler(cluster, pipelined=True)
        b = piped.run_stage([Task("t", machine=0, disk_read_bytes=100,
                                  cpu_ops=100,
                                  disk_write_bytes=100)]).elapsed
        assert a == pytest.approx(b)

    def test_busy_time_and_bytes_identical(self):
        cluster = flat_cluster()
        tasks = [Task(f"t{i}", machine=0, disk_read_bytes=50,
                      cpu_ops=30, sends=[(1, 40)],
                      disk_write_bytes=20) for i in range(3)]
        StageScheduler(cluster).run_stage(tasks)
        serial = cluster.metrics()
        cluster.reset()
        tasks = [Task(f"t{i}", machine=0, disk_read_bytes=50,
                      cpu_ops=30, sends=[(1, 40)],
                      disk_write_bytes=20) for i in range(3)]
        StageScheduler(cluster, pipelined=True).run_stage(tasks)
        piped = cluster.metrics()
        assert piped.total_machine_time == pytest.approx(
            serial.total_machine_time)
        assert piped.disk_bytes == serial.disk_bytes
        assert piped.network_bytes == serial.network_bytes
        assert piped.response_time <= serial.response_time

    def test_never_slower_than_serial(self):
        cluster = flat_cluster()
        rng = np.random.default_rng(5)
        def mk():
            return [Task(f"t{i}", machine=int(rng2 % 2),
                         disk_read_bytes=float(r), cpu_ops=float(c),
                         disk_write_bytes=float(w))
                    for i, (rng2, r, c, w) in enumerate(zip(
                        rng.integers(0, 2, 8), rng.integers(1, 100, 8),
                        rng.integers(1, 100, 8), rng.integers(1, 100, 8)))]
        rng = np.random.default_rng(5)
        a = StageScheduler(cluster).run_stage(mk()).elapsed
        cluster.reset()
        rng = np.random.default_rng(5)
        b = StageScheduler(cluster, pipelined=True).run_stage(mk()).elapsed
        assert b <= a + 1e-9

    def test_accepts_fault_plan(self):
        """Pipelined mode recovers from a kill like the serial manager."""
        from repro.cluster.storage import PartitionStore

        cluster = Cluster(t1(3, link_bps=100.0),
                          machine_spec=flat_cluster().machine_spec)
        store = PartitionStore([0], num_machines=3, replication=2, seed=0)
        plan = FaultPlan().add_kill(0, 1.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.5,
                               pipelined=True)
        result = sched.run_stage([
            Task("t", machine=0, partition=0, cpu_ops=300)
        ])
        assert result.failures == 1
        assert not cluster.machine(0).alive
        winner = [e for e in result.executions if e.succeeded]
        assert len(winner) == 1
        assert winner[0].machine in store.replicas(0)
        assert winner[0].start >= 1.0 + 0.5  # heartbeat-delayed detection


class TestPipelinedEngines:
    def test_propagation_results_identical(self, small_graph):
        surfer = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                        seed=7)
        serial = surfer.run_propagation(NetworkRankingPropagation(),
                                        iterations=2)
        piped = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=2, pipelined=True)
        assert np.allclose(serial.result, piped.result)
        assert piped.response_time <= serial.response_time
        assert piped.metrics.disk_bytes == serial.metrics.disk_bytes

    def test_mapreduce_results_identical(self, small_graph):
        surfer = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                        seed=7)
        serial = surfer.run_mapreduce(NetworkRankingMapReduce())
        piped = surfer.run_mapreduce(NetworkRankingMapReduce(),
                                     pipelined=True)
        assert np.allclose(serial.result, piped.result)
        assert piped.response_time <= serial.response_time
