"""Tests for the extension applications: CC and HADI-style diameter."""

import numpy as np
import pytest

from repro.apps import (
    ConnectedComponentsMapReduce,
    ConnectedComponentsPropagation,
    DiameterEstimationPropagation,
    canonical_labels,
    effective_diameter,
    fm_estimate,
    neighborhood_function_exact,
)
from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.graph import weakly_connected_components
from repro.graph.digraph import Graph
from repro.graph.generators import composite_social_graph, ring
from tests.conftest import make_test_cluster


@pytest.fixture(scope="module")
def components_graph():
    """Three weak components of varied shape, symmetrized for CC."""
    edges = [(0, 1), (1, 2), (2, 0),        # triangle
             (3, 4), (4, 5),                # path
             (6, 7)]                        # pair; 8 is isolated
    return Graph.from_edges(edges, num_vertices=9).symmetrized()


@pytest.fixture(scope="module")
def cc_surfer(components_graph):
    return Surfer(components_graph, make_test_cluster(2), num_parts=4,
                  seed=6)


class TestSymmetrized:
    def test_both_directions_present(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2).symmetrized()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_idempotent(self, small_graph):
        s = small_graph.symmetrized()
        assert s.symmetrized() == s


class TestConnectedComponents:
    def test_propagation_matches_oracle(self, components_graph, cc_surfer):
        job = cc_surfer.run_propagation(
            ConnectedComponentsPropagation(), iterations=10,
            until_convergence=True,
        )
        oracle = canonical_labels(
            weakly_connected_components(components_graph)
        )
        assert np.array_equal(job.result, oracle)

    def test_mapreduce_matches_oracle(self, components_graph, cc_surfer):
        job = cc_surfer.run_mapreduce(
            ConnectedComponentsMapReduce(), rounds=10,
            until_convergence=True,
        )
        oracle = canonical_labels(
            weakly_connected_components(components_graph)
        )
        assert np.array_equal(job.result, oracle)

    def test_convergence_stops_early(self, cc_surfer):
        job = cc_surfer.run_propagation(
            ConnectedComponentsPropagation(), iterations=50,
            until_convergence=True,
        )
        # a 9-vertex graph converges long before 50 iterations
        assert len(job.reports) < 10

    def test_social_graph_components(self, small_graph):
        sym = small_graph.symmetrized()
        surfer = Surfer(sym, make_test_cluster(4), num_parts=8, seed=1)
        job = surfer.run_propagation(
            ConnectedComponentsPropagation(), iterations=60,
            until_convergence=True,
        )
        oracle = canonical_labels(weakly_connected_components(sym))
        assert np.array_equal(job.result, oracle)

    def test_until_convergence_requires_hook(self, cc_surfer):
        from repro.apps import NetworkRankingPropagation
        with pytest.raises(JobError):
            cc_surfer.run_propagation(NetworkRankingPropagation(),
                                      iterations=3,
                                      until_convergence=True)

    def test_canonical_labels(self):
        labels = np.array([7, 7, 3, 7, 3, 9])
        assert list(canonical_labels(labels)) == [0, 0, 1, 0, 1, 2]


class TestFmEstimate:
    def test_single_low_bit(self):
        # mask 0b1: lowest zero bit is 1 -> 2^1 / phi
        assert fm_estimate([1]) == pytest.approx(2 / 0.77351)

    def test_more_bits_bigger_estimate(self):
        assert fm_estimate([0b1111]) > fm_estimate([0b1])

    def test_estimate_tracks_cardinality(self):
        """Union of many seeded masks estimates within FM error bounds."""
        from repro.apps.diameter import _fm_seed_masks
        masks = _fm_seed_masks(4096, 16, seed=0)
        union = np.bitwise_or.reduce(masks, axis=0)
        estimate = fm_estimate(union)
        assert 1000 < estimate < 17000  # within ~4x of 4096


class TestEffectiveDiameter:
    def test_plateau_detection(self):
        assert effective_diameter([10, 50, 95, 100, 100]) == 2

    def test_empty(self):
        assert effective_diameter([]) == 0

    def test_exact_oracle_on_ring(self):
        g = ring(8).symmetrized()
        n_of_h = neighborhood_function_exact(g, 4)
        assert n_of_h[0] == 8          # each vertex reaches itself
        assert n_of_h[1] == 8 * 3      # itself + 2 ring neighbors
        assert n_of_h[4] == 64         # everything within 4 hops


class TestDiameterApp:
    def test_converges_and_estimates(self):
        graph = composite_social_graph(4, 64, k=6, seed=5).symmetrized()
        surfer = Surfer(graph, make_test_cluster(4), num_parts=8, seed=5)
        job = surfer.run_propagation(
            DiameterEstimationPropagation(num_masks=8),
            iterations=30, until_convergence=True,
        )
        result = job.result
        n_of_h = result["neighborhood_function"]
        # N(h) is monotone non-decreasing
        assert all(a <= b + 1e-9 for a, b in zip(n_of_h, n_of_h[1:]))
        # converged before the cap
        assert len(job.reports) < 30
        exact = neighborhood_function_exact(graph,
                                            len(n_of_h) - 1)
        # effective diameters agree within 2 hops (FM is approximate)
        est = result["effective_diameter"]
        truth = effective_diameter([float(x) for x in exact])
        assert abs(est - truth) <= 2
