"""Unit tests for adjacency-list serialization."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.digraph import Graph
from repro.graph.io import (
    adjacency_record_bytes,
    graph_storage_bytes,
    read_adjacency_binary,
    read_adjacency_text,
    roundtrip_binary,
    roundtrip_text,
    write_adjacency_text,
)


def sample() -> Graph:
    return Graph.from_edges([(0, 1), (0, 2), (2, 1)], num_vertices=4)


class TestTextFormat:
    def test_roundtrip(self, small_graph):
        assert roundtrip_text(small_graph) == small_graph

    def test_roundtrip_empty_vertices(self):
        assert roundtrip_text(sample()) == sample()

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "g.adj"
        write_adjacency_text(sample(), path)
        assert read_adjacency_text(path) == sample()

    def test_format_content(self):
        buf = io.StringIO()
        write_adjacency_text(sample(), buf)
        lines = buf.getvalue().splitlines()
        assert lines[0] == "0 2 1 2"
        assert lines[3] == "3 0"

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n0 1 1\n1 0\n"
        g = read_adjacency_text(io.StringIO(text))
        assert g.num_vertices == 2
        assert g.has_edge(0, 1)

    def test_rejects_degree_mismatch(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_text(io.StringIO("0 2 1\n"))

    def test_rejects_duplicate_vertex(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_text(io.StringIO("0 0\n0 0\n"))

    def test_rejects_garbage(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_text(io.StringIO("zero one\n"))

    def test_rejects_negative_id(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_text(io.StringIO("-1 0\n"))


class TestBinaryFormat:
    def test_roundtrip(self, small_graph):
        assert roundtrip_binary(small_graph) == small_graph

    def test_file_roundtrip(self, tmp_path):
        from repro.graph.io import write_adjacency_binary
        path = tmp_path / "g.bin"
        write_adjacency_binary(sample(), path)
        assert read_adjacency_binary(path) == sample()

    def test_rejects_bad_magic(self):
        with pytest.raises(GraphFormatError):
            read_adjacency_binary(io.BytesIO(b"NOPE" + b"\0" * 32))

    def test_rejects_truncation(self):
        buf = io.BytesIO()
        from repro.graph.io import write_adjacency_binary
        write_adjacency_binary(sample(), buf)
        data = buf.getvalue()
        with pytest.raises(GraphFormatError):
            read_adjacency_binary(io.BytesIO(data[:-4]))


class TestSizing:
    def test_record_bytes(self):
        assert adjacency_record_bytes(0) == 12
        assert adjacency_record_bytes(3) == 12 + 24

    def test_graph_storage_bytes_matches_records(self):
        g = sample()
        total = sum(adjacency_record_bytes(g.out_degree(v))
                    for v in range(g.num_vertices))
        assert graph_storage_bytes(g) == total


class TestBinaryMmap:
    def test_mmap_roundtrip(self, tmp_path):
        from repro.graph.io import write_adjacency_binary
        path = tmp_path / "g.bin"
        write_adjacency_binary(sample(), path)
        g = read_adjacency_binary(path, mmap=True)
        assert g == sample()

        def backed_by_memmap(a):
            # Graph.__init__'s asarray strips the subclass but keeps
            # the file-backed buffer: walk .base to find the memmap
            while a is not None and not isinstance(a, np.memmap):
                a = a.base
            return isinstance(a, np.memmap)

        assert backed_by_memmap(g.out_indptr)
        assert backed_by_memmap(g.out_indices)

    def test_mmap_requires_a_path(self):
        buf = io.BytesIO()
        from repro.graph.io import write_adjacency_binary
        write_adjacency_binary(sample(), buf)
        buf.seek(0)
        with pytest.raises(GraphFormatError):
            read_adjacency_binary(buf, mmap=True)

    def test_mmap_rejects_truncation(self, tmp_path):
        from repro.graph.io import write_adjacency_binary
        path = tmp_path / "g.bin"
        write_adjacency_binary(sample(), path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(GraphFormatError):
            read_adjacency_binary(path, mmap=True)
