"""Unit tests for the home-grown MapReduce engine."""

import numpy as np
import pytest

from repro.core.surfer import Surfer
from repro.mapreduce.api import MapReduceApp
from repro.mapreduce.engine import reducer_of
from tests.conftest import make_test_cluster


class _WordCountApp(MapReduceApp):
    """Counts out-degrees per vertex via plain map/reduce."""

    name = "degree-count"

    def setup(self, pgraph):
        class State:
            values = {}
        return State()

    def map(self, partition, pgraph, state, emit):
        src, dst = pgraph.partition_edges(partition)
        for u in src:
            emit(int(u), 1)

    def reduce(self, key, values, state, emit):
        emit(key, sum(values))

    def finalize(self, state):
        return state.values


class TestReducerOf:
    def test_in_range(self):
        for key in range(200):
            assert 0 <= reducer_of(key, 7) < 7

    def test_deterministic_and_spread(self):
        buckets = {reducer_of(k, 8) for k in range(100)}
        assert len(buckets) == 8

    def test_string_keys(self):
        assert reducer_of("abc", 4) == reducer_of("abc", 4)


class TestEngine:
    @pytest.fixture()
    def surfer(self, small_graph):
        return Surfer(small_graph, make_test_cluster(4), num_parts=8,
                      seed=5)

    def test_wordcount_correct(self, small_graph, surfer):
        result = surfer.run_mapreduce(_WordCountApp())
        deg = small_graph.out_degrees()
        for v in range(small_graph.num_vertices):
            if deg[v]:
                assert result.result[v] == deg[v]

    def test_all_stages_present(self, surfer):
        job = surfer.run_mapreduce(_WordCountApp())
        report = job.reports[0]
        assert report.map_records == surfer.graph.num_edges
        assert report.shuffle_bytes > 0
        assert report.elapsed > 0

    def test_shuffle_mostly_remote(self, surfer):
        """Hash shuffle sends ~ (R-1)/R of the data across machines."""
        job = surfer.run_mapreduce(_WordCountApp())
        report = job.reports[0]
        remote_fraction = report.network_bytes / report.shuffle_bytes
        assert remote_fraction > 0.5

    def test_multiple_rounds_accumulate_io(self, surfer):
        one = surfer.run_mapreduce(_WordCountApp(), rounds=1)
        two = surfer.run_mapreduce(_WordCountApp(), rounds=2)
        assert two.metrics.disk_bytes > one.metrics.disk_bytes

    def test_reduce_runs_on_every_machine(self, surfer):
        job = surfer.run_mapreduce(_WordCountApp())
        reduce_machines = {
            e.machine for e in job.executions if e.task.kind == "reduce"
        }
        assert reduce_machines == set(range(4))

    def test_rejects_zero_rounds(self, surfer):
        from repro.errors import JobError
        with pytest.raises(JobError):
            surfer.run_mapreduce(_WordCountApp(), rounds=0)

    def test_writeback_adds_network(self, small_graph):
        class Plain(_WordCountApp):
            writeback_to_partitions = False

        class WriteBack(_WordCountApp):
            writeback_to_partitions = True

        surfer = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                        seed=5)
        plain = surfer.run_mapreduce(Plain())
        wb = surfer.run_mapreduce(WriteBack())
        assert wb.metrics.network_bytes > plain.metrics.network_bytes
