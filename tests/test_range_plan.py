"""Contiguous-range plans and the out-of-core Surfer path.

Parity matrix for ISSUE 9's acceptance bar: a job on a memmapped
:class:`~repro.graph.store.ShardBackedGraph` deployed with a
:class:`~repro.core.range_plan.RangePartitionPlan` must be bit-identical
— outputs *and* every deterministic cost counter — to the same job on
the fully in-memory graph with the same plan.  Below that sits the
structural parity: :class:`RangePartitionedGraph` must agree with the
table-based :class:`PartitionedGraph` on every shared accessor when
given the same contiguous partition assignment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APP_REGISTRY, EXTENSION_APPS
from repro.bench.workloads import make_cluster, topology_by_name
from repro.core.partitioned import PartitionedGraph, RangePartitionedGraph
from repro.core.placement import (
    estimate_partition_costs,
    partition_traffic_matrix,
)
from repro.core.range_plan import (
    balanced_range_offsets,
    contiguous_range_plan,
)
from repro.core.surfer import Surfer
from repro.errors import PartitioningError
from repro.graph.generators import rmat
from repro.graph.store import build_shard_store, open_shard_graph
from repro.graph.stream import stream_rmat

P = 8
SCALE, EDGE_FACTOR, SEED = 11, 8, 2010


@pytest.fixture(scope="module")
def in_memory():
    return rmat(SCALE, edge_factor=EDGE_FACTOR, seed=SEED)


@pytest.fixture(scope="module")
def shard_graph(tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "rmat"
    build_shard_store(
        stream_rmat(SCALE, edge_factor=EDGE_FACTOR, seed=SEED),
        path, num_shards=P)
    return open_shard_graph(path)


def make_surfer(graph, offsets):
    cluster = make_cluster(topology_by_name("T2(4,1)", 8))
    plan = contiguous_range_plan(graph, cluster.topology, P, seed=SEED,
                                 offsets=offsets)
    return Surfer(graph, cluster, seed=SEED, plan=plan)


def assert_jobs_identical(a, b):
    assert not a.failed and not b.failed
    ra, rb = np.asarray(a.result), np.asarray(b.result)
    np.testing.assert_array_equal(ra, rb)
    ma, mb = a.metrics, b.metrics
    assert ma.response_time == mb.response_time
    assert ma.total_machine_time == mb.total_machine_time
    assert ma.network_bytes == mb.network_bytes
    assert ma.disk_read_bytes == mb.disk_read_bytes
    assert ma.disk_write_bytes == mb.disk_write_bytes


class TestRangePartitionedGraphParity:
    """Same contiguous assignment, two partitioned-graph classes."""

    @pytest.fixture(scope="class")
    def pair(self, in_memory):
        offsets = balanced_range_offsets(in_memory, P)
        rg = RangePartitionedGraph(in_memory, offsets, P)
        tg = PartitionedGraph(in_memory, rg.parts, P)
        return rg, tg

    def test_partition_structure(self, pair):
        rg, tg = pair
        np.testing.assert_array_equal(rg.parts, tg.parts)
        np.testing.assert_array_equal(rg.boundary_mask, tg.boundary_mask)
        assert rg.num_cross_edges == tg.num_cross_edges
        assert rg.inner_edge_ratio == tg.inner_edge_ratio
        for p in range(P):
            assert rg.partition_size(p) == tg.partition_size(p)
            assert rg.partition_edge_count(p) == tg.partition_edge_count(p)
            assert rg.partition_bytes(p) == tg.partition_bytes(p)

    def test_partition_edges(self, pair):
        rg, tg = pair
        for p in range(P):
            r_src, r_dst = rg.partition_edges(p)
            t_src, t_dst = tg.partition_edges(p)
            np.testing.assert_array_equal(r_src, t_src)
            np.testing.assert_array_equal(r_dst, t_dst)

    def test_partition_out_edges_subset(self, pair):
        rg, tg = pair
        verts = rg.partition_vertices[3][::5]
        r_src, r_dst = rg.partition_out_edges(3, verts)
        t_src, t_dst = tg.partition_out_edges(3, verts)
        np.testing.assert_array_equal(r_src, t_src)
        np.testing.assert_array_equal(r_dst, t_dst)

    def test_cross_counts_and_placement_inputs(self, pair):
        rg, tg = pair
        r_out, r_in = rg.cross_partition_counts()
        t_out, t_in = tg.cross_partition_counts()
        np.testing.assert_array_equal(r_out, t_out)
        np.testing.assert_array_equal(r_in, t_in)
        np.testing.assert_array_equal(rg.cross_traffic_counts(),
                                      tg.cross_traffic_counts())
        np.testing.assert_array_equal(estimate_partition_costs(rg),
                                      estimate_partition_costs(tg))
        np.testing.assert_array_equal(partition_traffic_matrix(rg),
                                      partition_traffic_matrix(tg))


class TestContiguousRangePlan:
    def test_balanced_offsets_cover_graph(self, in_memory):
        offsets = balanced_range_offsets(in_memory, P)
        assert offsets[0] == 0 and offsets[-1] == in_memory.num_vertices
        assert np.all(np.diff(offsets) >= 0)

    def test_plan_fields(self, in_memory):
        topo = topology_by_name("T2(4,1)", 8)
        plan = contiguous_range_plan(in_memory, topo, P, seed=SEED)
        assert plan.method == "contiguous-range"
        assert plan.num_parts == P
        assert plan.range_offsets.size == P + 1
        assert plan.parts.size == in_memory.num_vertices
        assert plan.placement.size == P

    def test_rejects_non_power_of_two(self, in_memory):
        topo = topology_by_name("T2(4,1)", 8)
        with pytest.raises(PartitioningError):
            contiguous_range_plan(in_memory, topo, 6)

    def test_rejects_bad_offsets(self, in_memory):
        topo = topology_by_name("T2(4,1)", 8)
        with pytest.raises(PartitioningError):
            contiguous_range_plan(in_memory, topo, 4,
                                  offsets=[0, 5, 3, 7,
                                           in_memory.num_vertices])

    def test_surfer_dispatches_range_pgraph(self, in_memory):
        surfer = make_surfer(in_memory,
                             balanced_range_offsets(in_memory, P))
        assert isinstance(surfer.pgraph, RangePartitionedGraph)


class TestOutOfCoreJobParity:
    """The acceptance bar: shard-backed == in-memory, bit for bit."""

    def test_nr_vectorized(self, in_memory, shard_graph):
        offsets = shard_graph.store.vertex_starts
        jobs = []
        for graph in (in_memory, shard_graph):
            surfer = make_surfer(graph, offsets)
            jobs.append(surfer.run_propagation(
                APP_REGISTRY["NR"][0](), iterations=3, vectorized=True))
        assert_jobs_identical(*jobs)

    def test_nr_mapreduce(self, in_memory, shard_graph):
        offsets = shard_graph.store.vertex_starts
        jobs = []
        for graph in (in_memory, shard_graph):
            surfer = make_surfer(graph, offsets)
            jobs.append(surfer.run_mapreduce(
                APP_REGISTRY["NR"][1](), rounds=2, vectorized=True))
        assert_jobs_identical(*jobs)

    def test_bfs_frontier_until_convergence(self, in_memory, shard_graph):
        offsets = shard_graph.store.vertex_starts
        jobs = []
        for graph in (in_memory, shard_graph):
            surfer = make_surfer(graph, offsets)
            jobs.append(surfer.run_propagation(
                EXTENSION_APPS["BFS"][0](), iterations=64,
                frontier=True, until_convergence=True, vectorized=True))
        assert_jobs_identical(*jobs)

    def test_messages_counters_identical(self, in_memory, shard_graph):
        offsets = shard_graph.store.vertex_starts
        registries = []
        for graph in (in_memory, shard_graph):
            surfer = make_surfer(graph, offsets)
            job = surfer.run_propagation(APP_REGISTRY["NR"][0](),
                                         iterations=2, vectorized=True)
            registries.append(job.events.metrics)
        a, b = registries
        assert (a.get("propagation.messages_shipped")
                == b.get("propagation.messages_shipped"))
        assert (a.get("propagation.iterations")
                == b.get("propagation.iterations"))
