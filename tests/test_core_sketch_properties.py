"""Deeper partition-sketch property checks on structured graphs."""

import numpy as np
import pytest

from repro.core.sketch import PartitionSketch
from repro.graph.digraph import Graph
from repro.graph.generators import grid, ring
from repro.partitioning.recursive import recursive_bisection
from repro.partitioning.wgraph import WGraph


def sketch_for(graph, num_parts, seed=0):
    wg = WGraph.from_digraph(graph)
    rp = recursive_bisection(wg, num_parts, seed=seed)
    return PartitionSketch(graph, rp.parts, num_parts), rp


class TestSketchOnStructuredGraphs:
    def test_grid_sketch_monotone(self):
        sketch, __ = sketch_for(grid(16, 16), 16)
        cuts = [sketch.total_cut_at_level(l) for l in range(5)]
        assert cuts == sorted(cuts)
        assert cuts[0] == 0
        assert cuts[-1] > 0

    def test_disconnected_components_cut_zero(self):
        """Perfectly separable graph: the sketch finds zero cuts."""
        edges = []
        for c in range(4):
            base = 4 * c
            edges += [(base + i, base + (i + 1) % 4) for i in range(4)]
        g = Graph.from_edges(edges, num_vertices=16)
        sketch, rp = sketch_for(g, 4)
        assert sketch.total_cut_at_level(2) == 0

    def test_proximity_on_separable_graph(self):
        """With an ideal-like sketch, proximity violations vanish."""
        edges = []
        for c in range(8):
            base = 8 * c
            edges += [(base + i, base + j)
                      for i in range(8) for j in range(8) if i != j]
        # weak chain between consecutive cliques
        edges += [(8 * c + 7, 8 * (c + 1)) for c in range(7)]
        g = Graph.from_edges(edges, num_vertices=64)
        sketch, __ = sketch_for(g, 8, seed=3)
        # the chain structure means siblings share the heavy links
        assert len(sketch.proximity_violations()) <= 2

    def test_cross_edges_count_both_directions(self):
        g = ring(8)  # one directed cycle
        parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        sketch = PartitionSketch(g, parts, 2)
        # edges 3->4 and 7->0 cross, counted regardless of direction
        assert sketch.cross_edges((1, 0), (1, 1)) == 2

    def test_sibling_cuts_match_recursive_record(self):
        """C(left, right) of the root equals the recorded root cut
        (when no k-way rebalancing moved vertices)."""
        g = grid(8, 8)
        wg = WGraph.from_digraph(g)
        rp = recursive_bisection(wg, 4, seed=1, kway_tolerance=None)
        sketch = PartitionSketch(g, rp.parts, 4)
        # the weighted cut counts each merged undirected edge with its
        # multiplicity (2 for the grid's mutual pairs), and the sketch
        # counts directed edges — identical totals by construction
        assert sketch.cross_edges((1, 0), (1, 1)) == rp.node_cuts[(0, 0)]
