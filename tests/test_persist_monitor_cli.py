"""Tests for plan persistence, the job monitor and the CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.cluster.topology import t1
from repro.core.bandwidth_aware import bandwidth_aware_partition
from repro.core.persist import load_plan, save_plan
from repro.errors import PlacementError
from repro.runtime.monitor import JobMonitor, estimate_progress
from repro.runtime.tasks import Task, TaskExecution


class TestPersist:
    def test_roundtrip(self, small_graph, tmp_path):
        plan = bandwidth_aware_partition(small_graph, t1(4), 8, seed=0)
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        restored = load_plan(path)
        assert np.array_equal(restored.parts, plan.parts)
        assert np.array_equal(restored.placement, plan.placement)
        assert restored.num_parts == plan.num_parts
        assert restored.method == plan.method
        assert restored.node_cuts == plan.node_cuts
        assert restored.machine_sets == plan.machine_sets

    def test_restored_plan_runs(self, small_graph, tmp_path):
        from repro.apps import NetworkRankingPropagation
        from repro.core.surfer import Surfer
        from tests.conftest import make_test_cluster

        plan = bandwidth_aware_partition(small_graph, t1(4), 8, seed=0)
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        surfer = Surfer(small_graph, make_test_cluster(4),
                        plan=load_plan(path))
        job = surfer.run_propagation(NetworkRankingPropagation())
        assert job.result.size == small_graph.num_vertices

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a numpy archive")
        with pytest.raises(PlacementError):
            load_plan(path)

    def test_rejects_wrong_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(PlacementError):
            load_plan(path)


def _exec(machine, start, end, kind="work", succeeded=True):
    return TaskExecution(Task("t", machine=machine, kind=kind),
                         machine, start, end, succeeded)


class TestMonitor:
    def test_progress_bounds(self):
        execs = [_exec(0, 0, 10), _exec(1, 0, 20)]
        assert estimate_progress(execs, 0) == 0.0
        assert estimate_progress(execs, 25) == 1.0
        assert estimate_progress(execs, 10) == pytest.approx(20 / 30)

    def test_progress_empty(self):
        assert estimate_progress([], 5.0) == 1.0

    def test_utilization(self):
        execs = [_exec(0, 0, 10), _exec(1, 0, 5)]
        stats = JobMonitor(execs).machine_utilization()
        assert stats[0].utilization == pytest.approx(1.0)
        assert stats[1].utilization == pytest.approx(0.5)

    def test_stragglers(self):
        execs = [_exec(0, 0, 10), _exec(1, 0, 100), _exec(2, 0, 12)]
        assert JobMonitor(execs).stragglers() == [1]

    def test_stage_summary_counts_failures(self):
        execs = [_exec(0, 0, 5, kind="transfer"),
                 _exec(0, 5, 6, kind="transfer", succeeded=False)]
        summary = JobMonitor(execs).stage_summary()
        assert summary["transfer"]["tasks"] == 2
        assert summary["transfer"]["failed"] == 1

    def test_report_renders(self):
        execs = [_exec(0, 0, 10, kind="map")]
        report = JobMonitor(execs).report()
        assert "makespan" in report and "map" in report

    def test_empty_monitor(self):
        monitor = JobMonitor([])
        assert monitor.makespan == 0.0
        assert monitor.stragglers() == []
        assert "makespan" in monitor.report()


class TestCli:
    ARGS = ["--machines", "4", "--parts", "8", "--communities", "4",
            "--community-size", "32"]

    def test_run_propagation(self, capsys):
        assert cli_main(["run", "VDD"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "response time" in out and "makespan" in out

    def test_run_mapreduce(self, capsys):
        assert cli_main(["run", "VDD", "--engine", "mapreduce"]
                        + self.ARGS) == 0

    def test_run_extension_app(self, capsys):
        assert cli_main(["run", "CC"] + self.ARGS) == 0

    def test_diam_has_no_mapreduce(self, capsys):
        assert cli_main(["run", "DIAM", "--engine", "mapreduce"]
                        + self.ARGS) == 2

    def test_partition_and_info(self, tmp_path, capsys):
        plan_path = str(tmp_path / "p.npz")
        assert cli_main(["partition", plan_path] + self.ARGS) == 0
        assert cli_main(["info", plan_path]) == 0
        out = capsys.readouterr().out
        assert "bandwidth-aware" in out

    def test_experiment_table4(self, capsys):
        assert cli_main(["experiment", "table4"]) == 0
        assert "Table 4" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert cli_main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "NOPE"])


class TestCliExperimentFormatting:
    """Figure experiment commands, with the expensive functions stubbed."""

    def _patch(self, monkeypatch, name, value):
        from repro.bench import experiments
        monkeypatch.setattr(experiments, name, lambda *a, **k: value)

    def test_fig6_renders_bars(self, monkeypatch, capsys):
        self._patch(monkeypatch, "fig6_topologies", {
            "T1": {"oblivious": 100.0, "bandwidth-aware": 90.0,
                   "improvement_pct": 10.0},
        })
        assert cli_main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "#" in out

    def test_fig7_renders_bars(self, monkeypatch, capsys):
        self._patch(monkeypatch, "fig7_mr_vs_prop", {
            "NR": {"speedup": 2.0, "net_reduction_pct": 80.0},
        })
        assert cli_main(["experiment", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "#" in out

    def test_fig9(self, monkeypatch, capsys):
        self._patch(monkeypatch, "fig9_delay_sweep", {
            2: {"improvement_pct": 17.0},
            128: {"improvement_pct": 50.0},
        })
        assert cli_main(["experiment", "fig9"]) == 0
        assert "+50.0%" in capsys.readouterr().out

    def test_fig10(self, monkeypatch, capsys):
        self._patch(monkeypatch, "fig10_fault_tolerance", {
            "normal_response": 100.0, "faulty_response": 110.0,
            "overhead_pct": 10.0, "failures": 1, "retries": 2,
        })
        assert cli_main(["experiment", "fig10"]) == 0
        assert "3 tasks re-executed" in capsys.readouterr().out

    def test_fig11_and_fig12(self, monkeypatch, capsys):
        self._patch(monkeypatch, "fig11_scalability", {8: 10.0, 16: 9.0})
        assert cli_main(["experiment", "fig11"]) == 0
        self._patch(monkeypatch, "fig12_nr_scaling", {
            8: {"prop_time": 5.0, "mr_time": 10.0, "speedup": 2.0},
        })
        assert cli_main(["experiment", "fig12"]) == 0
        assert "2.00x" in capsys.readouterr().out

    def test_cascade(self, monkeypatch, capsys):
        self._patch(monkeypatch, "cascaded_propagation_experiment", {
            "v_k_ratio": 0.2, "d_min": 4,
            "iterations": {3: {"time_saving_pct": 8.0,
                               "disk_saving_pct": 4.0}},
        })
        assert cli_main(["experiment", "cascade"]) == 0
        assert "20.0%" in capsys.readouterr().out


class TestRenderBars:
    def test_empty(self):
        from repro.bench.harness import render_bars
        assert render_bars({}, title="t") == "t"

    def test_zero_values(self):
        from repro.bench.harness import render_bars
        text = render_bars({"a": 0.0, "b": 1.0})
        lines = text.splitlines()
        assert "#" not in lines[0]
        assert "#" in lines[1]

    def test_proportional(self):
        from repro.bench.harness import render_bars
        text = render_bars({"half": 50, "full": 100}, width=10)
        half, full = text.splitlines()
        assert half.count("#") == 5
        assert full.count("#") == 10
