"""Unit tests for the machine graph and its bandwidth-aware bisection."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.cluster.topology import t1, t2, t3
from repro.core.machine_graph import MachineGraph, bisect_machines


class TestMachineGraph:
    def test_complete_graph_weights(self):
        mg = MachineGraph(t1(4, link_bps=10.0))
        assert mg.num_machines == 4
        assert mg.weights[0, 1] == 10.0
        assert mg.weights[2, 2] == 0.0

    def test_subset(self):
        mg = MachineGraph(t2(2, 1, 8, link_bps=100.0))
        sub = mg.subset([0, 1, 4])
        assert sub.machines == [0, 1, 4]
        assert sub.weights[0, 2] == pytest.approx(100.0 / 32)

    def test_rejects_duplicates(self):
        with pytest.raises(PartitioningError):
            MachineGraph(t1(4), [0, 0, 1])

    def test_cut_weight(self):
        mg = MachineGraph(t1(4, link_bps=1.0))
        side = np.array([0, 0, 1, 1])
        assert mg.cut_weight(side) == 4.0  # 2x2 cross pairs

    def test_max_aggregate_bandwidth_machine(self):
        topo = t3(8, link_bps=100.0, seed=0)
        mg = MachineGraph(topo)
        best = mg.max_aggregate_bandwidth_machine()
        assert not topo.is_slow[best]


class TestBisection:
    def test_finds_pod_boundary(self):
        """The minimum-bandwidth cut of a 2-pod tree is the pod split."""
        topo = t2(2, 1, 16)
        mg = MachineGraph(topo)
        left, right = bisect_machines(mg, seed=0)
        pods_left = {topo.pod_of(m) for m in left}
        pods_right = {topo.pod_of(m) for m in right}
        assert pods_left != pods_right
        assert len(pods_left) == 1 and len(pods_right) == 1

    def test_equal_halves(self):
        mg = MachineGraph(t1(10))
        left, right = bisect_machines(mg, seed=1)
        assert len(left) == len(right) == 5

    def test_odd_count(self):
        mg = MachineGraph(t1(5))
        left, right = bisect_machines(mg, seed=0)
        assert {len(left), len(right)} == {2, 3}

    def test_t3_groups_slow_together(self):
        """Minimizing crossing bandwidth separates slow from fast."""
        topo = t3(16, link_bps=100.0, seed=2)
        mg = MachineGraph(topo)
        left, right = bisect_machines(mg, seed=0, num_restarts=16)
        slow_left = sum(topo.is_slow[m] for m in left)
        slow_right = sum(topo.is_slow[m] for m in right)
        # all slow machines end up on one side
        assert min(slow_left, slow_right) == 0

    def test_rejects_single_machine(self):
        with pytest.raises(PartitioningError):
            bisect_machines(MachineGraph(t1(1)))

    def test_deterministic(self):
        mg = MachineGraph(t2(4, 1, 16))
        assert bisect_machines(mg, seed=3) == bisect_machines(mg, seed=3)
