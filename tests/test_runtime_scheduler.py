"""Unit tests for the stage scheduler, including fault handling."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.spec import MachineSpec
from repro.cluster.storage import PartitionStore
from repro.cluster.topology import t1
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import Task


def make_cluster(n=2):
    spec = MachineSpec(disk_read_bps=100.0, disk_write_bps=100.0,
                       cpu_ops_per_sec=100.0, nic_bps=100.0)
    return Cluster(t1(n, link_bps=100.0), machine_spec=spec)


class TestBasicScheduling:
    def test_single_task_duration(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        result = sched.run_stage([
            Task("t", machine=0, disk_read_bytes=100, cpu_ops=100,
                 disk_write_bytes=100)
        ])
        assert result.elapsed == pytest.approx(3.0)
        assert cluster.machine(0).busy_time == pytest.approx(3.0)

    def test_tasks_serialize_per_machine(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        tasks = [Task(f"t{i}", machine=0, cpu_ops=100) for i in range(3)]
        result = sched.run_stage(tasks)
        assert result.elapsed == pytest.approx(3.0)

    def test_tasks_parallel_across_machines(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        tasks = [Task("a", machine=0, cpu_ops=100),
                 Task("b", machine=1, cpu_ops=100)]
        result = sched.run_stage(tasks)
        assert result.elapsed == pytest.approx(1.0)

    def test_stage_barrier(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        sched.run_stage([Task("slow", machine=0, cpu_ops=500)])
        # machine 1 idled through stage 1 but starts stage 2 at the barrier
        result = sched.run_stage([Task("next", machine=1, cpu_ops=100)])
        assert result.start_time == pytest.approx(5.0)
        assert result.end_time == pytest.approx(6.0)

    def test_network_send_charged_and_counted(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        result = sched.run_stage([
            Task("s", machine=0, sends=[(1, 200)])
        ])
        assert result.elapsed == pytest.approx(2.0)
        assert cluster.network.traffic.total_bytes == 200
        assert cluster.machine(0).bytes_sent == 200
        assert cluster.machine(1).bytes_received == 200

    def test_local_send_free(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        result = sched.run_stage([Task("s", machine=0, sends=[(0, 500)])])
        assert result.elapsed == 0.0
        assert cluster.network.traffic.total_bytes == 0

    def test_receive_charged_not_counted(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        result = sched.run_stage([
            Task("r", machine=1, receives=[(0, 300)])
        ])
        assert result.elapsed == pytest.approx(3.0)
        assert cluster.network.traffic.total_bytes == 0

    def test_fetch_charged_and_counted(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        result = sched.run_stage([
            Task("f", machine=1, fetches=[(0, 300)])
        ])
        assert result.elapsed == pytest.approx(3.0)
        assert cluster.network.traffic.total_bytes == 300

    def test_busy_time_excludes_barrier_wait(self):
        cluster = make_cluster()
        sched = StageScheduler(cluster)
        sched.run_stage([Task("slow", machine=0, cpu_ops=500),
                         Task("fast", machine=1, cpu_ops=100)])
        assert cluster.machine(1).busy_time == pytest.approx(1.0)
        assert cluster.machine(1).clock == pytest.approx(5.0)


class TestFaults:
    def test_task_reexecuted_on_replica(self):
        cluster = make_cluster(3)
        store = PartitionStore([0], num_machines=3, replication=2, seed=0)
        plan = FaultPlan().add_kill(0, 1.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.5)
        result = sched.run_stage([
            Task("t", machine=0, partition=0, cpu_ops=300)
        ])
        assert result.failures == 1
        execs = result.executions
        assert len(execs) == 2
        assert not execs[0].succeeded
        assert execs[1].succeeded
        assert execs[1].machine != 0
        assert execs[1].machine in store.replicas(0)

    def test_failed_machine_stops_taking_tasks(self):
        cluster = make_cluster(2)
        store = PartitionStore([0, 0], num_machines=2, replication=2,
                               seed=0)
        plan = FaultPlan().add_kill(0, 0.5)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        result = sched.run_stage([
            Task("a", machine=0, partition=0, cpu_ops=100),
            Task("b", machine=0, partition=1, cpu_ops=100),
        ])
        assert not cluster.machine(0).alive
        survivors = {e.machine for e in result.executions if e.succeeded}
        assert survivors == {1}

    def test_detection_waits_for_heartbeat(self):
        cluster = make_cluster(2)
        store = PartitionStore([0], num_machines=2, replication=2, seed=0)
        plan = FaultPlan().add_kill(0, 1.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=5.0)
        result = sched.run_stage([
            Task("t", machine=0, partition=0, cpu_ops=300)
        ])
        retry = [e for e in result.executions if e.succeeded][0]
        assert retry.start >= 1.0 + 5.0

    def test_combine_refetches_inputs(self):
        cluster = make_cluster(4)
        store = PartitionStore([0], num_machines=4, replication=2, seed=0)
        replica = store.replicas(0)[1]  # where the retry will run
        source = next(m for m in range(1, 4) if m != replica)
        plan = FaultPlan().add_kill(0, 0.5)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        sched.run_stage([
            Task("c", machine=0, partition=0, kind="combine", cpu_ops=100,
                 input_transfers=[(source, 400)])
        ])
        # the re-executed combine pulled its inputs again over the network
        assert cluster.network.traffic.total_bytes >= 400

    def test_no_refetch_when_retry_lands_on_source(self):
        cluster = make_cluster(3)
        store = PartitionStore([0], num_machines=3, replication=2, seed=0)
        replica = store.replicas(0)[1]
        plan = FaultPlan().add_kill(0, 0.5)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        sched.run_stage([
            Task("c", machine=0, partition=0, kind="combine", cpu_ops=100,
                 input_transfers=[(replica, 400)])
        ])
        # input already lives where the retry runs: nothing crosses the wire
        assert cluster.network.traffic.total_bytes == 0

    def test_mid_flight_failure_wastes_partial_time(self):
        cluster = make_cluster(2)
        store = PartitionStore([0], num_machines=2, replication=2, seed=0)
        plan = FaultPlan().add_kill(0, 1.5)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        result = sched.run_stage([
            Task("t", machine=0, partition=0, cpu_ops=300)
        ])
        failed = result.executions[0]
        assert not failed.succeeded
        assert failed.end == pytest.approx(1.5)
        assert cluster.machine(0).busy_time == pytest.approx(1.5)

    def test_all_dead_raises(self):
        from repro.errors import SchedulingError
        cluster = make_cluster(1)
        store = None
        plan = FaultPlan().add_kill(0, 0.1)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        with pytest.raises(SchedulingError):
            sched.run_stage([Task("t", machine=0, cpu_ops=300)])
