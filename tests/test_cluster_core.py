"""Unit tests for machine specs, cluster facade, storage and faults."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError, PlacementError, TopologyError
from repro.cluster.cluster import Cluster, partitions_for_memory
from repro.cluster.faults import FaultPlan
from repro.cluster.spec import MachineSpec
from repro.cluster.storage import PartitionStore
from repro.cluster.topology import t1, t2


class TestMachineSpec:
    def test_cost_functions(self):
        spec = MachineSpec(disk_read_bps=100.0, disk_write_bps=50.0,
                           cpu_ops_per_sec=10.0)
        assert spec.disk_read_time(200) == 2.0
        assert spec.disk_write_time(100) == 2.0
        assert spec.cpu_time(5) == 0.5

    def test_scaled_preserves_ratios(self):
        spec = MachineSpec()
        scaled = spec.scaled(1000.0)
        assert scaled.disk_read_bps == spec.disk_read_bps / 1000
        assert (scaled.nic_bps / scaled.disk_read_bps ==
                pytest.approx(spec.nic_bps / spec.disk_read_bps))
        # memory scales with the rates so "fits in memory" is preserved
        assert scaled.memory_bytes == spec.memory_bytes / 1000
        assert scaled.random_io_penalty == spec.random_io_penalty

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(TopologyError):
            MachineSpec(disk_read_bps=0)
        with pytest.raises(TopologyError):
            MachineSpec().scaled(0)


class TestPartitionsForMemory:
    def test_paper_rule(self):
        # 128 GB graph on 2 GB budget -> 64 partitions
        assert partitions_for_memory(128, 2) == 64

    def test_rounds_up_to_power_of_two(self):
        assert partitions_for_memory(100, 30) == 4

    def test_fits_in_memory(self):
        assert partitions_for_memory(10, 100) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(TopologyError):
            partitions_for_memory(0, 1)


class TestCluster:
    def test_default_cluster(self):
        c = Cluster(num_machines=4)
        assert c.num_machines == 4
        assert c.alive_machines() == [0, 1, 2, 3]

    def test_machine_count_conflict(self):
        with pytest.raises(TopologyError):
            Cluster(t1(8), num_machines=4)

    def test_metrics_aggregate(self):
        c = Cluster(num_machines=2)
        c.machine(0).clock = 5.0
        c.machine(0).busy_time = 3.0
        c.machine(1).busy_time = 4.0
        c.machine(1).disk_read_bytes = 10
        m = c.metrics()
        assert m.response_time == 5.0
        assert m.total_machine_time == 7.0
        assert m.disk_bytes == 10

    def test_reset(self):
        c = Cluster(num_machines=2)
        c.machine(0).clock = 5.0
        c.network.transfer(0, 1, 100)
        c.reset()
        assert c.metrics().response_time == 0.0
        assert c.metrics().network_bytes == 0

    def test_unknown_machine(self):
        with pytest.raises(TopologyError):
            Cluster(num_machines=2).machine(5)


class TestPartitionStore:
    def test_replica_count_and_primary(self):
        store = PartitionStore([0, 1, 2, 3], num_machines=8,
                               replication=3, seed=0)
        for p in range(4):
            reps = store.replicas(p)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert reps[0] == store.primary(p) == p

    def test_partitions_on(self):
        store = PartitionStore([0, 0, 1], num_machines=4, replication=1)
        assert store.partitions_on(0) == [0, 1]
        assert store.partitions_on(1) == [2]

    def test_failure_promotes_replica(self):
        store = PartitionStore([0, 1], num_machines=4, replication=3,
                               seed=1)
        moved = store.handle_failure(0)
        assert moved == [0]
        assert store.primary(0) != 0
        assert 0 not in store.replicas(0)
        assert 0 not in store.replicas(1)

    def test_losing_last_replica_raises(self):
        store = PartitionStore([2], num_machines=4, replication=1)
        with pytest.raises(PlacementError):
            store.handle_failure(2)

    def test_rejects_over_replication(self):
        with pytest.raises(PlacementError):
            PartitionStore([0], num_machines=2, replication=3)

    def test_rejects_bad_placement(self):
        with pytest.raises(PlacementError):
            PartitionStore([5], num_machines=2, replication=1)


class TestFaultPlan:
    def test_kill_time(self):
        plan = FaultPlan().add_kill(3, 100.0)
        assert plan.kill_time(3) == 100.0
        assert plan.kill_time(4) is None

    def test_is_dead(self):
        plan = FaultPlan().add_kill(0, 10.0)
        assert not plan.is_dead(0, 5.0)
        assert plan.is_dead(0, 10.0)

    def test_ordering(self):
        plan = FaultPlan().add_kill(1, 50.0).add_kill(0, 20.0)
        assert [k.machine for k in plan.kills] == [0, 1]

    def test_duplicate_kill_rejected(self):
        plan = FaultPlan().add_kill(0, 1.0)
        with pytest.raises(FaultInjectionError):
            plan.add_kill(0, 2.0)

    def test_rejects_negative_time(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().add_kill(0, -1.0)
