"""Tests for the virtual-vertex path and app sizing hooks."""

import numpy as np
import pytest

from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.propagation.api import PropagationApp, message_nbytes
from tests.conftest import make_test_cluster


class _GroupBySign(PropagationApp):
    """Groups vertices by (id mod 3) via virtual vertices."""

    name = "mod3"
    uses_virtual_vertices = True
    is_associative = True

    def setup(self, pgraph):
        class State:
            values = {}
        return State()

    def virtual_transfer(self, u, state):
        yield u % 3, 1

    def virtual_combine(self, key, values, state):
        return sum(values)

    def merge(self, a, b):
        return a + b

    def update(self, state, combined):
        state.values = dict(combined)

    def finalize(self, state):
        return state.values


class _MultiEmit(PropagationApp):
    """Each vertex emits to two virtual keys."""

    name = "multi"
    uses_virtual_vertices = True

    def setup(self, pgraph):
        class State:
            values = {}
        return State()

    def virtual_transfer(self, u, state):
        yield "evens" if u % 2 == 0 else "odds", u
        yield "all", 1

    def virtual_combine(self, key, values, state):
        return len(values)

    def update(self, state, combined):
        state.values = dict(combined)

    def finalize(self, state):
        return state.values


@pytest.fixture()
def surfer(small_graph):
    return Surfer(small_graph, make_test_cluster(4), num_parts=8, seed=6)


class TestVirtualVertices:
    def test_group_by_counts(self, small_graph, surfer):
        result = surfer.run_propagation(_GroupBySign()).result
        n = small_graph.num_vertices
        expected = {r: sum(1 for v in range(n) if v % 3 == r)
                    for r in range(3)}
        assert result == expected

    def test_string_keys_and_multi_emit(self, small_graph, surfer):
        result = surfer.run_propagation(_MultiEmit()).result
        n = small_graph.num_vertices
        assert result["all"] == n
        assert result["evens"] + result["odds"] == n

    def test_local_opts_do_not_change_virtual_results(self, surfer):
        a = surfer.run_propagation(_GroupBySign(), local_opts=True).result
        b = surfer.run_propagation(_GroupBySign(), local_opts=False).result
        assert a == b

    def test_merging_reduces_virtual_traffic(self, surfer):
        on = surfer.run_propagation(_GroupBySign(), local_opts=True)
        off = surfer.run_propagation(_GroupBySign(), local_opts=False)
        # 3 keys, many messages: merging must collapse traffic massively
        assert on.metrics.network_bytes < 0.5 * off.metrics.network_bytes


class TestApiDefaults:
    def test_unimplemented_udfs_raise(self):
        app = PropagationApp()
        with pytest.raises(JobError):
            app.transfer(0, 1, None)
        with pytest.raises(JobError):
            app.combine(0, [], None)
        with pytest.raises(JobError):
            app.merge(1, 2)
        with pytest.raises(JobError):
            app.virtual_combine("k", [], None)
        with pytest.raises(JobError):
            list(app.virtual_transfer(0, None))

    def test_default_update_needs_values(self):
        class Bare:
            pass
        app = PropagationApp()
        with pytest.raises(JobError):
            app.update(Bare(), {0: 1})

    def test_message_nbytes_includes_header(self):
        app = PropagationApp()
        assert message_nbytes(app, 1.0) == 16.0  # 8 B id + 8 B payload

    def test_app_value_sizes(self):
        from repro.apps import (
            ReverseLinkGraphPropagation,
            TwoHopFriendsPropagation,
        )
        rlg = ReverseLinkGraphPropagation()
        assert rlg.value_nbytes((1, 2, 3)) == 24.0
        tfl = TwoHopFriendsPropagation()
        assert tfl.value_nbytes(frozenset({1, 2})) == 16.0
        assert tfl.value_nbytes(frozenset()) == 8.0  # floor

    def test_mapreduce_unimplemented(self):
        from repro.mapreduce.api import MapReduceApp
        app = MapReduceApp()
        with pytest.raises(JobError):
            app.map(0, None, None, print)
        with pytest.raises(JobError):
            app.reduce(0, [], None, print)
