"""Shard store: round-trip fidelity and the O(shard) access contract.

``build_shard_store`` must write exactly the graph that
``Graph.from_edges(dedup=True, drop_self_loops=True)`` would build from
the same stream — per-shard dedup equals global dedup because shards
split by source range — and ``ShardBackedGraph`` must serve every
consumer-facing accessor from memmapped shard views without ever
assembling the global indices array (``out_indices`` raises).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.store import (
    ShardBackedGraph,
    ShardStore,
    build_shard_store,
    open_shard_graph,
)
from repro.graph.stream import stream_from_edges, stream_rmat


def reference_graph(stream) -> Graph:
    parts = [np.stack([s, d], axis=1) for s, d in stream.chunks()]
    edges = (np.concatenate(parts, axis=0) if parts
             else np.zeros((0, 2), dtype=np.int64))
    return Graph.from_edges(edges, num_vertices=stream.num_vertices,
                            dedup=True, drop_self_loops=True)


@pytest.fixture
def rmat_stream():
    return stream_rmat(9, edge_factor=8, seed=2010, chunk_size=997)


class TestRoundTrip:
    @pytest.mark.parametrize("num_shards", [1, 3, 7])
    def test_equals_in_memory_build(self, tmp_path, rmat_stream,
                                    num_shards):
        store = build_shard_store(rmat_stream, tmp_path / "s", num_shards)
        shard_graph = ShardBackedGraph(store)
        ref = reference_graph(rmat_stream)
        assert shard_graph == ref
        assert ref == shard_graph.to_graph()
        np.testing.assert_array_equal(store.global_indptr(),
                                      ref.out_indptr)

    def test_reopen(self, tmp_path, rmat_stream):
        build_shard_store(rmat_stream, tmp_path / "s", 4)
        reopened = open_shard_graph(tmp_path / "s")
        assert reopened == reference_graph(rmat_stream)
        assert reopened.store.num_shards == 4

    def test_pinned_boundaries_with_empty_shards(self, tmp_path):
        edges = np.array([[0, 1], [0, 2], [9, 0]], dtype=np.int64)
        stream = stream_from_edges(edges, num_vertices=10)
        # shards 1 and 3 own vertex ranges with no edges at all
        starts = [0, 1, 5, 9, 9, 10]
        store = build_shard_store(stream, tmp_path / "s", 5,
                                  vertex_starts=starts)
        assert store.shard_edge_count(1) == 0
        assert store.shard_edge_count(3) == 0
        assert ShardBackedGraph(store) == reference_graph(stream)

    def test_empty_graph(self, tmp_path):
        stream = stream_from_edges(np.zeros((0, 2), dtype=np.int64),
                                   num_vertices=6)
        store = build_shard_store(stream, tmp_path / "s", 3)
        g = ShardBackedGraph(store)
        assert g.num_edges == 0
        assert g == reference_graph(stream)

    def test_dedup_and_self_loops_match_from_edges(self, tmp_path):
        edges = np.array([[1, 0], [1, 0], [2, 2], [0, 1], [2, 1]],
                         dtype=np.int64)
        stream = stream_from_edges(edges, num_vertices=3)
        store = build_shard_store(stream, tmp_path / "s", 2)
        assert store.num_edges == 3  # one dup and one self-loop dropped
        assert ShardBackedGraph(store) == reference_graph(stream)

    def test_raw_duplicates_preserved_when_dedup_off(self, tmp_path):
        edges = np.array([[1, 0], [1, 0], [2, 2]], dtype=np.int64)
        stream = stream_from_edges(edges, num_vertices=3)
        store = build_shard_store(stream, tmp_path / "s", 2, dedup=False,
                                  drop_self_loops=False)
        assert store.num_edges == 3
        ref = Graph.from_edges(edges, num_vertices=3)
        np.testing.assert_array_equal(store.global_indptr(),
                                      ref.out_indptr)


class TestShardStoreAccess:
    def test_manifest_and_offsets(self, tmp_path, rmat_stream):
        store = build_shard_store(rmat_stream, tmp_path / "s", 4)
        assert store.vertex_starts.size == 5
        assert store.edge_offsets[-1] == store.num_edges
        assert store.largest_shard_edges() == max(
            store.shard_edge_count(s) for s in range(4))

    def test_shard_of(self, tmp_path, rmat_stream):
        store = build_shard_store(rmat_stream, tmp_path / "s", 4)
        verts = np.arange(store.num_vertices, dtype=np.int64)
        by_array = store.shard_of_array(verts)
        assert all(store.shard_of(int(v)) == by_array[v] for v in
                   verts[:: max(1, verts.size // 37)])
        for s in range(4):
            lo, hi = store.vertex_starts[s], store.vertex_starts[s + 1]
            assert np.all(by_array[lo:hi] == s)

    def test_indices_range_crosses_shards(self, tmp_path, rmat_stream):
        store = build_shard_store(rmat_stream, tmp_path / "s", 4)
        ref = reference_graph(rmat_stream)
        total = ref.out_indices.size
        for lo, hi in [(0, total), (1, total - 1),
                       (total // 3, 2 * total // 3), (5, 5)]:
            np.testing.assert_array_equal(store.indices_range(lo, hi),
                                          ref.out_indices[lo:hi])

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(GraphError):
            ShardStore(tmp_path)


class TestShardBackedGraph:
    def test_out_indices_raises(self, tmp_path, rmat_stream):
        g = ShardBackedGraph(
            build_shard_store(rmat_stream, tmp_path / "s", 3))
        with pytest.raises(GraphError):
            g.out_indices

    def test_accessors_match_reference(self, tmp_path, rmat_stream):
        g = ShardBackedGraph(
            build_shard_store(rmat_stream, tmp_path / "s", 3))
        ref = reference_graph(rmat_stream)
        for v in range(0, ref.num_vertices, 19):
            np.testing.assert_array_equal(g.out_neighbors(v),
                                          ref.out_neighbors(v))
        lo, hi = int(ref.out_indptr[7]), int(ref.out_indptr[100])
        np.testing.assert_array_equal(g.out_indices_range(lo, hi),
                                      ref.out_indices[lo:hi])

    def test_out_edges_of_unsorted_vertices(self, tmp_path, rmat_stream):
        g = ShardBackedGraph(
            build_shard_store(rmat_stream, tmp_path / "s", 3))
        ref = reference_graph(rmat_stream)
        verts = np.array([200, 3, 3, 511, 0, 127], dtype=np.int64)
        g_src, g_dst = g.out_edges_of(verts)
        r_src, r_dst = ref.out_edges_of(verts)
        np.testing.assert_array_equal(g_src, r_src)
        np.testing.assert_array_equal(g_dst, r_dst)

    def test_iter_edges(self, tmp_path):
        edges = np.array([[0, 2], [1, 0], [3, 1]], dtype=np.int64)
        store = build_shard_store(
            stream_from_edges(edges, num_vertices=4), tmp_path / "s", 2)
        assert (sorted(ShardBackedGraph(store).iter_edges())
                == sorted(map(tuple, edges.tolist())))
