"""Tests for the principle-P2 random-I/O memory penalty."""

import numpy as np
import pytest

from repro.apps import NetworkRankingPropagation
from repro.cluster.cluster import Cluster
from repro.cluster.spec import MachineSpec
from repro.cluster.topology import t1
from repro.core.surfer import Surfer
from repro.errors import TopologyError
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import Task


def cluster_with_memory(memory_bytes: float, n: int = 4) -> Cluster:
    spec = MachineSpec(memory_bytes=memory_bytes, disk_read_bps=100.0,
                       disk_write_bps=100.0, cpu_ops_per_sec=1e9,
                       nic_bps=1e9, random_io_penalty=4.0)
    return Cluster(t1(n, link_bps=1e9), machine_spec=spec)


class TestSchedulerPenalty:
    def test_penalty_multiplies_disk_time(self):
        cluster = cluster_with_memory(1e9, 1)
        sched = StageScheduler(cluster)
        plain = sched.run_stage([Task("a", machine=0,
                                      disk_read_bytes=100)])
        cluster.reset()
        penalized = sched.run_stage([Task("b", machine=0,
                                          disk_read_bytes=100,
                                          disk_penalty=4.0)])
        assert penalized.elapsed == pytest.approx(4 * plain.elapsed)

    def test_penalty_does_not_inflate_byte_counters(self):
        cluster = cluster_with_memory(1e9, 1)
        sched = StageScheduler(cluster)
        sched.run_stage([Task("b", machine=0, disk_read_bytes=100,
                              disk_penalty=4.0)])
        assert cluster.metrics().disk_read_bytes == 100

    def test_rejects_sub_one_penalty_spec(self):
        with pytest.raises(TopologyError):
            MachineSpec(random_io_penalty=0.5)


class TestEnginePenalty:
    def test_small_memory_slows_runs_only_in_time(self, tiny_graph):
        results = {}
        for memory in (1e12, 10.0):  # plentiful vs. absurdly tight
            surfer = Surfer(tiny_graph, cluster_with_memory(memory),
                            num_parts=8, seed=4)
            job = surfer.run_propagation(NetworkRankingPropagation())
            results[memory] = job
        fits, thrashes = results[1e12], results[10.0]
        assert thrashes.metrics.response_time > \
            1.5 * fits.metrics.response_time
        # byte accounting identical: only the *rate* degraded
        assert thrashes.metrics.disk_bytes == fits.metrics.disk_bytes
        assert np.allclose(thrashes.result, fits.result)

    def test_penalty_flag_set_on_tasks(self, tiny_graph):
        surfer = Surfer(tiny_graph, cluster_with_memory(10.0),
                        num_parts=8, seed=4)
        job = surfer.run_propagation(NetworkRankingPropagation())
        assert all(e.task.disk_penalty > 1.0 for e in job.executions
                   if e.task.kind == "transfer")

    def test_no_penalty_when_fits(self, tiny_graph):
        surfer = Surfer(tiny_graph, cluster_with_memory(1e12),
                        num_parts=8, seed=4)
        job = surfer.run_propagation(NetworkRankingPropagation())
        assert all(e.task.disk_penalty == 1.0 for e in job.executions)

    def test_mapreduce_penalty(self, tiny_graph):
        from repro.apps import NetworkRankingMapReduce
        tight = Surfer(tiny_graph, cluster_with_memory(10.0),
                       num_parts=8, seed=4)
        roomy = Surfer(tiny_graph, cluster_with_memory(1e12),
                       num_parts=8, seed=4)
        slow = tight.run_mapreduce(NetworkRankingMapReduce())
        fast = roomy.run_mapreduce(NetworkRankingMapReduce())
        assert slow.metrics.response_time > fast.metrics.response_time
        assert np.allclose(slow.result, fast.result)
