"""Shared fixtures: small graphs and clusters that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import HARDWARE_SCALE, TESTBED_MACHINE
from repro.cluster.cluster import Cluster
from repro.cluster.topology import t1, t2
from repro.core.surfer import Surfer
from repro.graph.generators import composite_social_graph, grid, ring


@pytest.fixture(scope="session")
def small_graph():
    """A small composite social graph (~8k edges) shared across tests."""
    return composite_social_graph(
        num_communities=8, community_size=64, k=6, seed=42
    )


@pytest.fixture(scope="session")
def tiny_graph():
    """A very small composite graph for the slowest code paths."""
    return composite_social_graph(
        num_communities=4, community_size=32, k=4, seed=7
    )


@pytest.fixture()
def grid_graph():
    return grid(8, 8)


@pytest.fixture()
def ring_graph():
    return ring(16)


def make_test_cluster(num_machines: int = 8, topology=None) -> Cluster:
    """A small regime-scaled cluster."""
    if topology is None:
        topology = t1(num_machines, 40_000_000.0 / HARDWARE_SCALE)
    return Cluster(topology,
                   machine_spec=TESTBED_MACHINE.scaled(HARDWARE_SCALE))


@pytest.fixture()
def small_cluster():
    return make_test_cluster(8)


@pytest.fixture(scope="session")
def shared_surfer(small_graph):
    """A session-scoped Surfer on the small graph (read-only use)."""
    cluster = make_test_cluster(8)
    return Surfer(small_graph, cluster, num_parts=16,
                  layout="bandwidth-aware", seed=1)


@pytest.fixture(scope="session")
def shared_surfer_oblivious(small_graph):
    cluster = make_test_cluster(8)
    return Surfer(small_graph, cluster, num_parts=16,
                  layout="oblivious", seed=1)


def assert_partition_valid(parts: np.ndarray, num_vertices: int,
                           num_parts: int) -> None:
    assert parts.shape == (num_vertices,)
    assert parts.min() >= 0
    assert parts.max() < num_parts
