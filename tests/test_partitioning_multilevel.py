"""Unit tests for matching, coarsening, GGGP, FM and multilevel bisection."""

import numpy as np
import pytest

from repro.graph.digraph import Graph
from repro.graph.generators import grid, ring
from repro.partitioning.bisect import BisectionOptions, multilevel_bisection
from repro.partitioning.coarsen import coarsen_until, contract_matching
from repro.partitioning.ggp import gggp_bisection, random_bisection
from repro.partitioning.matching import heavy_edge_matching, random_matching
from repro.partitioning.metrics import weighted_cut
from repro.partitioning.refine import compute_gains, fm_refine
from repro.partitioning.wgraph import WGraph


def two_cliques(k: int = 5) -> WGraph:
    """Two k-cliques joined by a single bridge edge; obvious bisection."""
    edges = []
    for base in (0, k):
        edges += [(base + a, base + b)
                  for a in range(k) for b in range(a + 1, k)]
    edges.append((0, k))
    return WGraph.from_edges(edges, num_vertices=2 * k)


class TestMatching:
    def test_matching_is_involution(self):
        wg = WGraph.from_digraph(grid(5, 5))
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(wg, rng)
        for v in range(wg.num_vertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_neighbors(self):
        wg = WGraph.from_digraph(grid(4, 4))
        match = heavy_edge_matching(wg, np.random.default_rng(1))
        for v in range(wg.num_vertices):
            if match[v] != v:
                assert match[v] in wg.neighbors(v)

    def test_heavy_edges_preferred(self):
        # 0-1 weight 10, 0-2 weight 1: whenever 0 or 1 is visited first
        # the heavy pair forms, so it must dominate across seeds.
        wg = WGraph.from_edges([(0, 1), (0, 2)], num_vertices=3,
                               eweights=[10, 1])
        heavy = sum(
            heavy_edge_matching(wg, np.random.default_rng(seed))[0] == 1
            for seed in range(30)
        )
        assert heavy >= 15

    def test_random_matching_valid(self):
        wg = WGraph.from_digraph(grid(4, 4))
        match = random_matching(wg, np.random.default_rng(2))
        for v in range(wg.num_vertices):
            assert match[match[v]] == v


class TestCoarsening:
    def test_weights_preserved(self):
        wg = WGraph.from_digraph(grid(4, 4))
        match = heavy_edge_matching(wg, np.random.default_rng(0))
        coarse, mapping = contract_matching(wg, match)
        assert coarse.vweights.sum() == wg.vweights.sum()
        assert coarse.num_vertices < wg.num_vertices
        assert mapping.max() == coarse.num_vertices - 1

    def test_cut_preserved_under_projection(self):
        """Any coarse cut equals the projected fine cut (key invariant)."""
        wg = WGraph.from_digraph(grid(6, 6))
        match = heavy_edge_matching(wg, np.random.default_rng(3))
        coarse, mapping = contract_matching(wg, match)
        rng = np.random.default_rng(4)
        coarse_side = rng.integers(0, 2, coarse.num_vertices)
        fine_side = coarse_side[mapping]
        assert weighted_cut(coarse, coarse_side) == weighted_cut(
            wg, fine_side
        )

    def test_coarsen_until_target(self):
        wg = WGraph.from_digraph(grid(10, 10))
        levels = coarsen_until(wg, 12, np.random.default_rng(0))
        assert levels
        assert levels[-1].coarse.num_vertices <= max(
            12, levels[-1].fine.num_vertices
        )

    def test_coarsen_stops_on_stall(self):
        # star graphs barely shrink: matching pairs hub with one leaf
        wg = WGraph.from_edges([(0, i) for i in range(1, 40)],
                               num_vertices=40)
        levels = coarsen_until(wg, 2, np.random.default_rng(0))
        assert len(levels) < 40  # must terminate


class TestInitialBisection:
    def test_gggp_finds_clique_split(self):
        wg = two_cliques(6)
        side = gggp_bisection(wg, np.random.default_rng(0), num_trials=8)
        assert weighted_cut(wg, side) == 1

    def test_gggp_balanced(self):
        wg = WGraph.from_digraph(grid(6, 6))
        side = gggp_bisection(wg, np.random.default_rng(1))
        counts = np.bincount(side, minlength=2)
        assert abs(counts[0] - counts[1]) <= 2

    def test_single_vertex(self):
        wg = WGraph.from_edges([], num_vertices=1)
        assert list(gggp_bisection(wg, np.random.default_rng(0))) == [0]

    def test_random_bisection_balanced(self):
        wg = WGraph.from_digraph(grid(6, 6))
        side = random_bisection(wg, np.random.default_rng(0))
        counts = np.bincount(side, minlength=2)
        assert abs(counts[0] - counts[1]) <= 2


class TestFM:
    def test_gains_definition(self):
        wg = two_cliques(4)
        side = np.zeros(8, dtype=np.int64)
        side[4:] = 1  # optimal split
        gains = compute_gains(wg, side)
        # every vertex is internal except the bridge endpoints
        assert gains[0] == 1 - 3  # bridge endpoint: ext 1, int 3
        assert gains[1] == -3

    def test_fm_never_worsens(self):
        wg = WGraph.from_digraph(grid(6, 6))
        rng = np.random.default_rng(5)
        side = rng.integers(0, 2, wg.num_vertices)
        before = weighted_cut(wg, side)
        after = weighted_cut(wg, fm_refine(wg, side))
        assert after <= before

    def test_fm_fixes_one_bad_vertex(self):
        wg = two_cliques(5)
        side = np.zeros(10, dtype=np.int64)
        side[5:] = 1
        side[9] = 0  # one clique member on the wrong side
        refined = fm_refine(wg, side)
        assert weighted_cut(wg, refined) == 1

    def test_fm_respects_balance(self):
        wg = WGraph.from_digraph(grid(4, 4))
        side = np.zeros(16, dtype=np.int64)
        side[8:] = 1
        refined = fm_refine(wg, side, epsilon=0.05)
        counts = np.bincount(refined, minlength=2)
        assert counts.min() >= int((0.5 - 0.05) * 16)


class TestMultilevel:
    def test_two_cliques(self):
        wg = two_cliques(8)
        result = multilevel_bisection(wg, np.random.default_rng(0))
        assert result.cut == 1

    def test_grid_cut_reasonable(self):
        wg = WGraph.from_digraph(grid(8, 8))
        result = multilevel_bisection(wg, np.random.default_rng(0))
        # optimal cut of an 8x8 bidirected grid bisection is 8
        assert result.cut <= 16

    def test_random_initial_worse_or_equal(self):
        wg = WGraph.from_digraph(grid(8, 8))
        good = multilevel_bisection(
            wg, np.random.default_rng(0),
            BisectionOptions(refine=False, initial="gggp"),
        )
        bad = multilevel_bisection(
            wg, np.random.default_rng(0),
            BisectionOptions(refine=False, initial="random"),
        )
        assert good.cut <= bad.cut

    def test_refinement_helps(self):
        wg = WGraph.from_digraph(grid(8, 8))
        refined = multilevel_bisection(
            wg, np.random.default_rng(1), BisectionOptions(refine=True)
        )
        raw = multilevel_bisection(
            wg, np.random.default_rng(1), BisectionOptions(refine=False)
        )
        assert refined.cut <= raw.cut

    def test_empty_and_singleton(self):
        assert multilevel_bisection(
            WGraph.from_edges([], num_vertices=0),
            np.random.default_rng(0),
        ).side.size == 0
        assert list(multilevel_bisection(
            WGraph.from_edges([], num_vertices=1),
            np.random.default_rng(0),
        ).side) == [0]
