"""Application correctness: every app, both primitives, against oracles."""

import numpy as np
import pytest

from repro.apps import (
    APP_ORDER,
    APP_REGISTRY,
    DegreeDistributionMapReduce,
    DegreeDistributionPropagation,
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
    RecommenderMapReduce,
    RecommenderPropagation,
    ReverseLinkGraphMapReduce,
    ReverseLinkGraphPropagation,
    TriangleCountingMapReduce,
    TriangleCountingPropagation,
    TwoHopFriendsMapReduce,
    TwoHopFriendsPropagation,
    sample_mask,
)
from repro.core.surfer import Surfer
from repro.graph import (
    count_triangles,
    degree_histogram,
    pagerank,
    two_hop_neighbors,
)
from tests.conftest import make_test_cluster


@pytest.fixture(scope="module")
def surfer(tiny_graph):
    return Surfer(tiny_graph, make_test_cluster(4), num_parts=8, seed=2)


class TestNetworkRanking:
    def test_propagation_matches_oracle(self, tiny_graph, surfer):
        job = surfer.run_propagation(NetworkRankingPropagation(),
                                     iterations=3)
        assert np.allclose(job.result, pagerank(tiny_graph,
                                                num_iterations=3))

    def test_mapreduce_matches_oracle(self, tiny_graph, surfer):
        job = surfer.run_mapreduce(NetworkRankingMapReduce(), rounds=3)
        assert np.allclose(job.result, pagerank(tiny_graph,
                                                num_iterations=3))

    def test_custom_damping(self, tiny_graph, surfer):
        job = surfer.run_propagation(NetworkRankingPropagation(damping=0.5),
                                     iterations=2)
        assert np.allclose(job.result, pagerank(tiny_graph, damping=0.5,
                                                num_iterations=2))

    def test_rank_mass_conserved_without_dangling(self, surfer, tiny_graph):
        job = surfer.run_propagation(NetworkRankingPropagation(),
                                     iterations=2)
        assert job.result.sum() <= 1.0 + 1e-9


class TestDegreeDistribution:
    def test_propagation(self, tiny_graph, surfer):
        job = surfer.run_propagation(DegreeDistributionPropagation())
        assert job.result == degree_histogram(tiny_graph)

    def test_mapreduce(self, tiny_graph, surfer):
        job = surfer.run_mapreduce(DegreeDistributionMapReduce())
        assert job.result == degree_histogram(tiny_graph)

    def test_no_layout_sensitivity(self, tiny_graph):
        """Virtual-vertex routing ignores the graph layout entirely."""
        a = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                   layout="bandwidth-aware", seed=2)
        b = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                   layout="oblivious", seed=2)
        ra = a.run_propagation(DegreeDistributionPropagation())
        rb = b.run_propagation(DegreeDistributionPropagation())
        assert ra.result == rb.result


class TestReverseLinkGraph:
    def test_propagation(self, tiny_graph, surfer):
        job = surfer.run_propagation(ReverseLinkGraphPropagation())
        assert job.result == tiny_graph.reverse()

    def test_mapreduce(self, tiny_graph, surfer):
        job = surfer.run_mapreduce(ReverseLinkGraphMapReduce())
        assert job.result == tiny_graph.reverse()

    def test_double_reverse_identity(self, tiny_graph, surfer):
        job = surfer.run_propagation(ReverseLinkGraphPropagation())
        assert job.result.reverse() == tiny_graph


class TestTriangleCounting:
    def test_propagation_exact(self, tiny_graph, surfer):
        job = surfer.run_propagation(
            TriangleCountingPropagation(select_ratio=1.0)
        )
        assert job.result == count_triangles(tiny_graph)

    def test_mapreduce_exact(self, tiny_graph, surfer):
        job = surfer.run_mapreduce(
            TriangleCountingMapReduce(select_ratio=1.0)
        )
        assert job.result == count_triangles(tiny_graph)

    def test_engines_agree_on_sample(self, surfer):
        prop = surfer.run_propagation(
            TriangleCountingPropagation(select_ratio=0.5)
        )
        mr = surfer.run_mapreduce(
            TriangleCountingMapReduce(select_ratio=0.5)
        )
        assert prop.result == mr.result

    def test_sampling_reduces_count(self, surfer):
        full = surfer.run_propagation(
            TriangleCountingPropagation(select_ratio=1.0)
        )
        sampled = surfer.run_propagation(
            TriangleCountingPropagation(select_ratio=0.3)
        )
        assert sampled.result <= full.result


class TestTwoHopFriends:
    def test_propagation_matches_oracle(self, tiny_graph, surfer):
        job = surfer.run_propagation(
            TwoHopFriendsPropagation(select_ratio=1.0)
        )
        for v in range(tiny_graph.num_vertices):
            expected = two_hop_neighbors(tiny_graph, v)
            assert job.result.get(v, set()) == expected

    def test_mapreduce_agrees(self, surfer):
        prop = surfer.run_propagation(
            TwoHopFriendsPropagation(select_ratio=1.0)
        )
        mr = surfer.run_mapreduce(TwoHopFriendsMapReduce(select_ratio=1.0))
        assert prop.result == mr.result


class TestRecommender:
    def test_engines_agree(self, surfer):
        prop = surfer.run_propagation(RecommenderPropagation(), iterations=3)
        mr = surfer.run_mapreduce(RecommenderMapReduce(), rounds=3)
        assert np.array_equal(prop.result, mr.result)

    def test_adoption_monotone(self, surfer):
        one = surfer.run_propagation(RecommenderPropagation(), iterations=1)
        three = surfer.run_propagation(RecommenderPropagation(),
                                       iterations=3)
        assert three.result.sum() >= one.result.sum()
        # adopters never churn
        assert np.all(three.result[one.result])

    def test_zero_probability_no_spread(self, surfer):
        app = RecommenderPropagation(probability=0.0)
        job = surfer.run_propagation(app, iterations=2)
        seeds = sample_mask(surfer.graph.num_vertices, app.initial_ratio,
                            app.seed)
        assert np.array_equal(job.result, seeds)

    def test_full_probability_spreads_fast(self, surfer):
        job = surfer.run_propagation(
            RecommenderPropagation(probability=1.0), iterations=3
        )
        assert job.result.mean() > 0.5


class TestRegistry:
    def test_all_apps_registered(self):
        assert set(APP_ORDER) == set(APP_REGISTRY)

    def test_registry_classes_instantiable(self):
        for prop_cls, mr_cls, iters in APP_REGISTRY.values():
            assert iters >= 1
            prop_cls()
            mr_cls()
