"""Unit tests for the CSR digraph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph


def simple_graph() -> Graph:
    #     0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated
    return Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 0)],
                            num_vertices=4)


class TestConstruction:
    def test_from_edges_counts(self):
        g = simple_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_from_edges_infers_num_vertices(self):
        g = Graph.from_edges([(0, 5)])
        assert g.num_vertices == 6

    def test_empty_graph(self):
        g = Graph.empty(3)
        assert g.num_vertices == 3
        assert g.num_edges == 0
        assert list(g.out_neighbors(0)) == []

    def test_zero_edges_from_edges(self):
        g = Graph.from_edges([], num_vertices=2)
        assert g.num_edges == 0

    def test_dedup(self):
        g = Graph.from_edges([(0, 1), (0, 1), (1, 0)], dedup=True)
        assert g.num_edges == 2

    def test_drop_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1)], drop_self_loops=True)
        assert g.num_edges == 1

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(-1, 0)])

    def test_rejects_out_of_range_with_explicit_n(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(0, 5)], num_vertices=3)

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            Graph.from_edges(np.array([[1, 2, 3]]))

    def test_rejects_inconsistent_csr(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 2]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 2, 1]), np.array([0, 0]))


class TestAdjacency:
    def test_out_neighbors_sorted(self):
        g = simple_graph()
        assert list(g.out_neighbors(0)) == [1, 2]

    def test_in_neighbors(self):
        g = simple_graph()
        assert sorted(g.in_neighbors(2)) == [0, 1]
        assert list(g.in_neighbors(3)) == []

    def test_degrees(self):
        g = simple_graph()
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1
        assert list(g.out_degrees()) == [2, 1, 1, 0]
        assert list(g.in_degrees()) == [1, 1, 2, 0]

    def test_edge_sources_aligned(self):
        g = simple_graph()
        src = g.edge_sources()
        dst = g.out_indices
        assert sorted(zip(src, dst)) == [(0, 1), (0, 2), (1, 2), (2, 0)]

    def test_iter_edges_matches_edges(self):
        g = simple_graph()
        assert list(g.iter_edges()) == [tuple(e) for e in g.edges()]

    def test_has_edge(self):
        g = simple_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(3, 0)


class TestDerived:
    def test_reverse_roundtrip(self):
        g = simple_graph()
        assert g.reverse().reverse() == g

    def test_reverse_edges(self):
        g = simple_graph()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(0, 2)
        assert not r.has_edge(0, 1)

    def test_to_undirected_merges_antiparallel(self):
        g = Graph.from_edges([(0, 1), (1, 0)], num_vertices=2)
        indptr, indices, weights = g.to_undirected()
        # one undirected edge stored twice, weight 2 each side
        assert list(indices) == [1, 0]
        assert list(weights) == [2, 2]

    def test_to_undirected_drops_self_loops(self):
        g = Graph.from_edges([(0, 0), (0, 1)], num_vertices=2)
        __, indices, __ = g.to_undirected()
        assert 0 not in indices[:1]

    def test_subgraph(self):
        g = simple_graph()
        sub, ids = g.subgraph([0, 2])
        assert sub.num_vertices == 2
        assert list(ids) == [0, 2]
        # edges 0->2 and 2->0 survive in local ids
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 0)
        assert sub.num_edges == 2

    def test_subgraph_rejects_duplicates(self):
        g = simple_graph()
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            g.subgraph([0, 0])

    def test_equality(self):
        assert simple_graph() == simple_graph()
        assert simple_graph() != Graph.empty(4)


class TestChunkedIngest:
    """``from_edges`` consumes iterables in chunks: no ``list(edges)``."""

    def test_generator_matches_array(self):
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 500, size=(200_000, 2), dtype=np.int64)
        from_gen = Graph.from_edges((tuple(row) for row in arr.tolist()),
                                    num_vertices=500)
        from_arr = Graph.from_edges(arr, num_vertices=500)
        assert from_gen == from_arr

    def test_generator_with_dedup(self):
        pairs = [(0, 1), (1, 2), (0, 1), (2, 2)]
        g = Graph.from_edges(iter(pairs), dedup=True,
                             drop_self_loops=True)
        assert g.num_edges == 2

    def test_empty_generator(self):
        g = Graph.from_edges(iter(()), num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_ragged_iterable_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges(iter([(0, 1), (2,)]))


class TestOutIndicesRange:
    def test_matches_slice(self):
        g = simple_graph()
        np.testing.assert_array_equal(g.out_indices_range(1, 3),
                                      g.out_indices[1:3])
        assert g.out_indices_range(0, 0).size == 0
