"""Bitrot guard: every example script imports cleanly.

The examples are too slow to execute inside the unit suite (they run
full-size simulated jobs), but importing them catches broken imports and
syntax errors; all have ``if __name__ == "__main__"`` guards so importing
performs no work.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main")


def test_all_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "social_influence", "topology_planner",
            "fault_tolerance_demo", "dataflow_analytics"} <= names
