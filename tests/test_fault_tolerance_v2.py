"""Fault-tolerance v2: transient faults, stragglers, speculation,
re-replication.

Unit coverage for the generalized :class:`FaultPlan`, the idempotent
replicated store, and the scheduler's recovery paths (double failures,
failure of a re-assigned machine, kill at t=0, transient recovery
mid-stage, speculative winner/loser accounting), plus end-to-end jobs
surviving double failures and failing cleanly on data loss.
"""

import numpy as np
import pytest

from repro.apps import NetworkRankingPropagation
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan, Outage
from repro.cluster.spec import MachineSpec
from repro.cluster.storage import PartitionStore
from repro.cluster.topology import t1
from repro.core.surfer import Surfer
from repro.errors import DataLossError, FaultInjectionError, SchedulingError
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import Task
from repro.runtime.trace import recovery_event_counts, recovery_timeline
from tests.conftest import make_test_cluster


def make_cluster(n=2):
    spec = MachineSpec(disk_read_bps=100.0, disk_write_bps=100.0,
                       cpu_ops_per_sec=100.0, nic_bps=100.0)
    return Cluster(t1(n, link_bps=100.0), machine_spec=spec)


class TestFaultPlan:
    def test_kill_time_lookup(self):
        plan = FaultPlan().add_kill(3, 7.0).add_kill(1, 2.0)
        assert plan.kill_time(3) == 7.0
        assert plan.kill_time(1) == 2.0
        assert plan.kill_time(0) is None
        assert [k.machine for k in plan.kills] == [1, 3]  # time order

    def test_duplicate_kill_rejected(self):
        plan = FaultPlan().add_kill(0, 1.0)
        with pytest.raises(FaultInjectionError):
            plan.add_kill(0, 2.0)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().add_kill(0, -1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan().add_transient(0, 1.0, downtime=0.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan().add_slowdown(0, 1.0, duration=5.0, factor=1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan().add_slowdown(-1, 1.0, duration=5.0, factor=2.0)

    def test_overlapping_windows_rejected(self):
        plan = FaultPlan().add_transient(0, 1.0, downtime=2.0)
        with pytest.raises(FaultInjectionError):
            plan.add_transient(0, 2.0, downtime=1.0)
        plan.add_transient(0, 3.0, downtime=1.0)  # adjacent is fine
        plan.add_transient(1, 2.0, downtime=1.0)  # other machine is fine
        slow = FaultPlan().add_slowdown(0, 0.0, duration=10.0, factor=2.0)
        with pytest.raises(FaultInjectionError):
            slow.add_slowdown(0, 5.0, duration=1.0, factor=3.0)

    def test_is_down_and_is_dead(self):
        plan = (FaultPlan().add_kill(0, 5.0)
                .add_transient(1, 2.0, downtime=3.0))
        assert not plan.is_dead(0, 4.9) and plan.is_dead(0, 5.0)
        assert not plan.is_down(1, 1.9)
        assert plan.is_down(1, 2.0) and plan.is_down(1, 4.9)
        assert not plan.is_down(1, 5.0)  # rejoined
        assert plan.is_down(0, 5.0)  # dead implies down

    def test_next_outage(self):
        plan = (FaultPlan().add_transient(0, 2.0, downtime=1.0)
                .add_kill(0, 10.0))
        assert plan.next_outage(0, 0.0) == Outage(2.0, 3.0, False)
        assert plan.next_outage(0, 2.5) == Outage(2.0, 3.0, False)
        # the transient is over: the kill is next
        out = plan.next_outage(0, 3.0)
        assert out.permanent and out.start == 10.0 and out.end == np.inf
        assert plan.next_outage(1, 0.0) is None

    def test_advance_identity_without_slowdowns(self):
        plan = FaultPlan()
        assert plan.advance(0, 3.0, 4.0) == 7.0
        assert plan.advance(0, 3.0, 0.0) == 3.0

    def test_advance_stretches_inside_window(self):
        plan = FaultPlan().add_slowdown(0, 10.0, duration=100.0, factor=4.0)
        # entirely before the window
        assert plan.advance(0, 0.0, 5.0) == pytest.approx(5.0)
        # entirely inside: 4x wall time
        assert plan.advance(0, 10.0, 5.0) == pytest.approx(30.0)
        # spans the boundary: 8 nominal = 8 wall + 2 more at 4x
        assert plan.advance(0, 2.0, 10.0) == pytest.approx(18.0)
        # other machines unaffected
        assert plan.advance(1, 10.0, 5.0) == pytest.approx(15.0)

    def test_advance_past_window_end(self):
        plan = FaultPlan().add_slowdown(0, 0.0, duration=4.0, factor=2.0)
        # window capacity is 2 nominal seconds; the remaining 3 run at
        # full rate after it: 4 + 3 = 7
        assert plan.advance(0, 0.0, 5.0) == pytest.approx(7.0)

    def test_empty_and_machines(self):
        assert FaultPlan().empty
        plan = (FaultPlan().add_kill(2, 1.0)
                .add_slowdown(5, 0.0, duration=1.0, factor=2.0))
        assert not plan.empty
        assert plan.machines() == {2, 5}


class TestPartitionStore:
    def test_handle_failure_idempotent(self):
        store = PartitionStore([0, 1], num_machines=3, replication=2,
                               seed=0)
        moved = store.handle_failure(0)
        replicas_after = [store.replicas(p) for p in range(2)]
        assert store.handle_failure(0) == []  # second call is a no-op
        assert [store.replicas(p) for p in range(2)] == replicas_after
        assert 0 in store.failed_machines
        for p in moved:
            assert store.primary(p) != 0

    def test_last_replica_raises_data_loss(self):
        store = PartitionStore([0], num_machines=2, replication=1, seed=0)
        with pytest.raises(DataLossError):
            store.handle_failure(0)

    def test_add_replica_rejects_failed_machine(self):
        store = PartitionStore([0], num_machines=3, replication=2, seed=0)
        store.handle_failure(2) if 2 in store.replicas(0) else None
        store._failed.add(1)
        with pytest.raises(Exception):
            store.add_replica(0, 1)

    def test_re_replicate_restores_counts(self):
        store = PartitionStore([0, 0, 1], num_machines=4, replication=3,
                               seed=0)
        store.handle_failure(0)
        assert store.under_replicated()
        copies = store.re_replicate(alive=[1, 2, 3])
        assert copies  # at least one partition needed repair
        assert store.under_replicated() == []
        for p, src, dst in copies:
            assert src in store.replicas(p)
            assert dst in store.replicas(p)
            assert dst != 0 and src != 0

    def test_re_replicate_caps_at_survivor_count(self):
        store = PartitionStore([0], num_machines=3, replication=3, seed=0)
        store.handle_failure(0)
        store.re_replicate(alive=[1, 2])
        # only two machines left: two replicas is the best we can do
        assert sorted(store.replicas(0)) == [1, 2]

    def test_partition_nbytes(self):
        store = PartitionStore([0, 1], num_machines=2, replication=1,
                               seed=0, partition_bytes=[100, 250])
        assert store.partition_nbytes(0) == 100
        assert store.partition_nbytes(1) == 250
        plain = PartitionStore([0], num_machines=2, replication=1, seed=0)
        assert plain.partition_nbytes(0) == 0


class TestSchedulerRecovery:
    def test_kill_at_time_zero(self):
        """A machine dead before the stage starts never runs anything."""
        cluster = make_cluster(3)
        store = PartitionStore([0, 0], num_machines=3, replication=2,
                               seed=0)
        plan = FaultPlan().add_kill(0, 0.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.5)
        result = sched.run_stage([
            Task("a", machine=0, partition=0, cpu_ops=100),
            Task("b", machine=0, partition=1, cpu_ops=100),
        ])
        assert not cluster.machine(0).alive
        assert cluster.machine(0).busy_time == 0.0
        winners = [e for e in result.executions if e.succeeded]
        assert len(winners) == 2
        assert all(e.machine != 0 for e in winners)
        assert all(e.start >= 0.5 for e in winners)  # heartbeat delay
        assert result.failures == 2

    def test_failure_of_reassigned_machine(self):
        """The retry's machine dies too; the task lands on a third one."""
        cluster = make_cluster(4)
        store = PartitionStore([0], num_machines=4, replication=3, seed=0)
        first_backup = store.replicas(0)[1]
        plan = (FaultPlan().add_kill(0, 0.5)
                .add_kill(first_backup, 2.0))
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        result = sched.run_stage([
            Task("t", machine=0, partition=0, cpu_ops=300)
        ])
        winners = [e for e in result.executions if e.succeeded]
        assert len(winners) == 1
        assert winners[0].machine not in {0, first_backup}
        assert winners[0].task.attempt == 2  # two re-dispatches
        assert result.failures == 2
        assert not cluster.machine(0).alive
        assert not cluster.machine(first_backup).alive

    def test_retry_budget_exhausted(self):
        cluster = make_cluster(4)
        store = PartitionStore([0], num_machines=4, replication=3, seed=0)
        first_backup = store.replicas(0)[1]
        plan = (FaultPlan().add_kill(0, 0.5)
                .add_kill(first_backup, 2.0))
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1,
                               max_retries=1)
        with pytest.raises(SchedulingError):
            sched.run_stage([Task("t", machine=0, partition=0,
                                  cpu_ops=300)])

    def test_transient_recovery_mid_stage(self):
        """In-flight task fails over; the queue resumes after recovery."""
        cluster = make_cluster(2)
        store = PartitionStore([0, 0], num_machines=2, replication=2,
                               seed=0)
        plan = FaultPlan().add_transient(0, 1.0, downtime=2.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.5)
        result = sched.run_stage([
            Task("a", machine=0, partition=0, cpu_ops=300),
            Task("b", machine=0, partition=1, cpu_ops=100),
        ])
        # the in-flight task a failed over to machine 1 ...
        assert result.failures == 1
        retry = next(e for e in result.executions
                     if e.succeeded and e.task.name == "a#retry")
        assert retry.machine == 1
        # ... while queued task b waited out the outage on machine 0
        b = next(e for e in result.executions
                 if e.succeeded and e.task.name == "b")
        assert b.machine == 0 and b.start >= 3.0
        assert cluster.machine(0).alive
        assert cluster.machine(0).down_seconds == pytest.approx(2.0)
        assert cluster.machine(0).recoveries == 1
        # a transient outage never touches the replica metadata
        assert store.failed_machines == frozenset()
        assert store.replicas(0) == [0, 1]
        kinds = {e.kind for e in result.recovery_events}
        assert {"machine-down", "machine-recovered",
                "detect", "redispatch"} <= kinds

    def test_transient_at_dispatch_waits(self):
        """A machine down at dispatch time just delays its queue."""
        cluster = make_cluster(2)
        plan = FaultPlan().add_transient(0, 0.0, downtime=2.0)
        sched = StageScheduler(cluster, plan, heartbeat=0.5)
        result = sched.run_stage([Task("t", machine=0, cpu_ops=100)])
        assert result.failures == 0
        assert result.executions[0].start == pytest.approx(2.0)
        assert result.elapsed == pytest.approx(3.0)

    def test_double_failure_with_triple_replication(self):
        cluster = make_cluster(5)
        store = PartitionStore([0, 1, 2], num_machines=5, replication=3,
                               seed=0, partition_bytes=[100, 100, 100])
        second = store.replicas(0)[1]
        plan = FaultPlan().add_kill(0, 0.3).add_kill(second, 1.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.1)
        tasks = [Task(f"t{p}", machine=store.primary(p), partition=p,
                      cpu_ops=300) for p in range(3)]
        result = sched.run_stage(tasks)
        done = {e.task.partition for e in result.executions if e.succeeded}
        assert done == {0, 1, 2}
        assert sched.re_replication_bytes > 0
        assert cluster.network.traffic.background_bytes > 0
        # repair restored partition 0 despite losing two of three holders
        assert len(store.replicas(0)) >= 2
        assert all(m not in {0, second} for m in store.replicas(0))

    def test_speculative_backup_wins(self):
        cluster = make_cluster(4)
        plan = FaultPlan().add_slowdown(0, 0.0, duration=100.0,
                                        factor=10.0)
        sched = StageScheduler(cluster, plan, speculation=True,
                               speculation_factor=2.0)
        tasks = [Task(f"t{m}", machine=m, cpu_ops=100) for m in range(4)]
        result = sched.run_stage(tasks)
        # straggler detected at 2x median (2s); backup runs 2s..3s and
        # wins against the original's 10s
        assert result.elapsed == pytest.approx(3.0)
        spec = next(e for e in result.executions
                    if e.task.name.endswith("#spec"))
        assert spec.succeeded and spec.machine != 0
        cancelled = next(e for e in result.executions
                         if e.task.name == "t0")
        assert not cancelled.succeeded
        assert cancelled.end == pytest.approx(3.0)
        # the cancelled attempt is only charged up to the cancel point
        assert cluster.machine(0).busy_time == pytest.approx(3.0)
        kinds = [e.kind for e in result.recovery_events]
        assert kinds.count("spec-launch") == 1
        assert kinds.count("spec-win") == 1
        assert kinds.count("spec-cancel") == 1

    def test_speculative_backup_loses(self):
        cluster = make_cluster(4)
        plan = FaultPlan().add_slowdown(0, 0.0, duration=100.0,
                                        factor=2.5)
        sched = StageScheduler(cluster, plan, speculation=True,
                               speculation_factor=2.0)
        tasks = [Task(f"t{m}", machine=m, cpu_ops=100) for m in range(4)]
        result = sched.run_stage(tasks)
        # original takes 2.5s; backup launches at 2.0s and would finish
        # at 3.0s, so the original wins and the backup is cancelled
        assert result.elapsed == pytest.approx(2.5)
        original = next(e for e in result.executions
                        if e.task.name == "t0")
        assert original.succeeded
        backup = next(e for e in result.executions
                      if e.task.name.endswith("#spec"))
        assert not backup.succeeded
        kinds = [e.kind for e in result.recovery_events]
        assert kinds.count("spec-launch") == 1
        assert kinds.count("spec-win") == 0
        assert kinds.count("spec-cancel") == 1
        # the losing backup moved no bytes
        assert cluster.network.traffic.total_bytes == 0

    def test_speculation_noop_without_stragglers(self):
        cluster = make_cluster(4)
        sched = StageScheduler(cluster, speculation=True)
        tasks = [Task(f"t{m}", machine=m, cpu_ops=100) for m in range(4)]
        result = sched.run_stage(tasks)
        assert result.elapsed == pytest.approx(1.0)
        assert result.recovery_events == []

    def test_pipelined_matches_serial_recovery(self):
        """Pipelined and serial drains recover the same task set."""
        def run(pipelined):
            cluster = make_cluster(3)
            store = PartitionStore([0, 0], num_machines=3, replication=2,
                                   seed=0)
            plan = FaultPlan().add_kill(0, 1.0)
            sched = StageScheduler(cluster, plan, store, heartbeat=0.5,
                                   pipelined=pipelined)
            result = sched.run_stage([
                Task("a", machine=0, partition=0, cpu_ops=100,
                     disk_read_bytes=50),
                Task("b", machine=0, partition=1, cpu_ops=100,
                     disk_read_bytes=50),
            ])
            return {(e.task.name.split("#")[0], e.machine)
                    for e in result.executions if e.succeeded}
        assert run(False) == run(True)


class TestRecoveryTrace:
    def test_event_counts_and_timeline(self):
        cluster = make_cluster(3)
        store = PartitionStore([0], num_machines=3, replication=2, seed=0,
                               partition_bytes=[100])
        plan = FaultPlan().add_kill(0, 1.0)
        sched = StageScheduler(cluster, plan, store, heartbeat=0.5)
        sched.run_stage([Task("t", machine=0, partition=0, cpu_ops=300)])
        counts = recovery_event_counts(sched.recovery_events)
        assert counts["machine-down"] == 1
        assert counts["detect"] == 1
        assert counts["redispatch"] == 1
        assert counts["re-replicate"] >= 1
        times, series = recovery_timeline(sched.recovery_events,
                                          bucket_seconds=1.0)
        assert len(times) > 0
        assert sum(series["machine-down"]) == 1


class TestEndToEndJobs:
    def test_double_failure_job_completes(self, tiny_graph):
        baseline = Surfer(tiny_graph, make_test_cluster(6), num_parts=8,
                          seed=3)
        clean = baseline.run_propagation(NetworkRankingPropagation(),
                                         iterations=2)
        surfer = Surfer(tiny_graph, make_test_cluster(6), num_parts=8,
                        seed=3)
        victims = surfer.store.replicas(0)[:2]
        resp = clean.response_time
        plan = (FaultPlan().add_kill(victims[0], 0.3 * resp)
                .add_kill(victims[1], 0.6 * resp))
        result = surfer.run_propagation(NetworkRankingPropagation(),
                                        iterations=2, fault_plan=plan)
        assert not result.failed
        assert np.allclose(result.result, clean.result)
        assert result.metrics.re_replication_bytes > 0
        counts = recovery_event_counts(result.recovery_events)
        assert counts["machine-down"] == 2
        assert counts.get("re-replicate", 0) >= 1

    def test_data_loss_returns_clean_failed_job(self, tiny_graph):
        surfer = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=3, replication=1)
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        result = surfer.run_propagation(NetworkRankingPropagation(),
                                        iterations=2, fault_plan=plan)
        assert result.failed
        assert result.result is None
        assert result.error and "replica" in result.error
        kinds = {e.kind for e in result.recovery_events}
        assert "data-loss" in kinds
