"""Unit tests for the network cost model and traffic accounting."""

import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.topology import t1, t2, t3


class TestTransfer:
    def test_transfer_time(self):
        net = NetworkModel(t1(4, link_bps=100.0))
        assert net.transfer_time(0, 1, 200) == 2.0

    def test_local_transfer_free(self):
        net = NetworkModel(t1(4))
        assert net.transfer_time(1, 1, 1000) == 0.0
        assert net.transfer(1, 1, 1000) == 0.0
        assert net.traffic.total_bytes == 0

    def test_traffic_accounting(self):
        net = NetworkModel(t2(2, 1, 8, link_bps=100.0))
        net.transfer(0, 1, 100)   # intra-pod
        net.transfer(0, 4, 100)   # cross-pod
        assert net.traffic.total_bytes == 200
        assert net.traffic.cross_pod_bytes == 100
        assert net.traffic.transfers == 2
        assert net.traffic.per_pair[(0, 4)] == 100

    def test_reset(self):
        net = NetworkModel(t1(2))
        net.transfer(0, 1, 10)
        net.reset()
        assert net.traffic.total_bytes == 0


class TestEffectiveBandwidth:
    def test_no_users_falls_back_to_pairwise(self):
        net = NetworkModel(t2(2, 1, 32, link_bps=320.0))
        assert net.effective_bandwidth(0, 16) == 10.0  # /32

    def test_fair_share_with_full_contention(self):
        """All pod members on the uplink => the paper's worst case."""
        topo = t2(2, 1, 32, link_bps=320.0)
        net = NetworkModel(topo)
        users = {("uplink", 0, 2): set(range(16)),
                 ("uplink", 1, 2): set(range(16, 32))}
        assert net.effective_bandwidth(0, 16, users) == pytest.approx(10.0)

    def test_few_users_get_more(self):
        topo = t2(2, 1, 32, link_bps=320.0)
        net = NetworkModel(topo)
        users = {("uplink", 0, 2): {0}, ("uplink", 1, 2): {16}}
        bw = net.effective_bandwidth(0, 16, users)
        assert bw > 10.0
        assert bw <= 320.0

    def test_intra_pod_unaffected(self):
        topo = t2(2, 1, 32, link_bps=320.0)
        net = NetworkModel(topo)
        assert net.effective_bandwidth(0, 1, {}) == 320.0

    def test_t3_slow_nic_resource(self):
        topo = t3(8, link_bps=100.0, seed=0)
        net = NetworkModel(topo)
        slow = int(topo.is_slow.argmax())
        fast = int((~topo.is_slow).argmax())
        assert net.effective_bandwidth(fast, slow, {}) == 50.0


class TestFlowsTime:
    def test_empty_flows(self):
        net = NetworkModel(t1(4, link_bps=100.0))
        assert net.flows_time(0, [], nic_bps=50.0) == 0.0

    def test_single_flow_pair_limited(self):
        net = NetworkModel(t1(4, link_bps=10.0))
        assert net.flows_time(0, [(1, 100)], nic_bps=1000.0) == 10.0

    def test_multiplexing_caps_at_nic(self):
        net = NetworkModel(t1(8, link_bps=10.0))
        flows = [(i, 100) for i in range(1, 6)]  # 5 full-rate flows
        # aggregate capacity = min(nic=30, 10 * 5) = 30
        assert net.flows_time(0, flows, nic_bps=30.0) == pytest.approx(
            500 / 30
        )

    def test_reduced_class_does_not_multiplex(self):
        topo = t2(2, 1, 8, link_bps=320.0)
        net = NetworkModel(topo)
        flows = [(m, 100) for m in range(4, 8)]  # 4 cross-pod flows
        # pairwise worst case: each at 10 B/s, shared: aggregate 10
        t = net.flows_time(0, flows, nic_bps=1000.0)
        assert t == pytest.approx(400 / 10.0)

    def test_local_flows_ignored(self):
        net = NetworkModel(t1(4, link_bps=10.0))
        assert net.flows_time(0, [(0, 500)], nic_bps=10.0) == 0.0


class TestGroupTimes:
    def test_all_to_all_worst_sender(self):
        net = NetworkModel(t2(2, 1, 8, link_bps=160.0))
        # 4+4 pods: worst sender crosses pods for 4 peers at 5 B/s
        t = net.all_to_all_time(range(8), bytes_per_pair=10.0)
        intra = 3 * 10 / 160.0
        cross = 4 * 10 / 5.0
        assert t == pytest.approx(intra + cross)

    def test_cross_exchange_zero_cases(self):
        net = NetworkModel(t1(4))
        assert net.cross_exchange_time([0], [1], 0.0) == 0.0
        assert net.cross_exchange_time([], [1], 100.0) == 0.0

    def test_cross_exchange_slower_on_tree(self):
        flat = NetworkModel(t1(8, link_bps=100.0))
        tree = NetworkModel(t2(2, 1, 8, link_bps=100.0))
        volume = 1000.0
        assert tree.cross_exchange_time(range(4), range(4, 8), volume) > \
            flat.cross_exchange_time(range(4), range(4, 8), volume)
