"""Tests for bandwidth calibration and calibrated machine graphs."""

import numpy as np
import pytest

from repro.cluster.calibration import (
    CalibratedTopology,
    calibrate_bandwidth,
    calibrated_machine_graph,
)
from repro.cluster.topology import t1, t2, t3
from repro.core.machine_graph import MachineGraph, bisect_machines
from repro.errors import TopologyError


class TestCalibration:
    def test_flat_topology_measured_exactly(self):
        topo = t1(4, link_bps=100.0)
        matrix = calibrate_bandwidth(topo)
        off_diag = matrix[~np.eye(4, dtype=bool)]
        assert np.allclose(off_diag, 100.0)

    def test_tree_topology_measured(self):
        topo = t2(2, 1, 8, link_bps=320.0)
        matrix = calibrate_bandwidth(topo)
        assert matrix[0, 1] == pytest.approx(320.0)     # intra-pod
        assert matrix[0, 4] == pytest.approx(10.0)      # cross-pod /32

    def test_t3_measured(self):
        topo = t3(8, link_bps=100.0, seed=1)
        matrix = calibrate_bandwidth(topo)
        slow = np.flatnonzero(topo.is_slow)
        fast = np.flatnonzero(~topo.is_slow)
        assert matrix[fast[0], slow[0]] == pytest.approx(50.0)

    def test_symmetric(self):
        matrix = calibrate_bandwidth(t2(2, 1, 8))
        assert np.allclose(matrix, matrix.T)

    def test_subset(self):
        topo = t1(6, link_bps=10.0)
        matrix = calibrate_bandwidth(topo, machines=[0, 2, 4])
        assert np.isfinite(matrix[0, 2])
        assert not np.isfinite(matrix[0, 1])  # never probed

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            calibrate_bandwidth(t1(2), probe_bytes=0)
        with pytest.raises(TopologyError):
            calibrate_bandwidth(t1(2), repeats=0)


class TestCalibratedTopology:
    def test_matches_oracle(self):
        oracle = t2(4, 1, 16, link_bps=160.0)
        calibrated = CalibratedTopology(calibrate_bandwidth(oracle))
        for i in range(16):
            for j in range(16):
                if i != j:
                    assert calibrated.bandwidth(i, j) == pytest.approx(
                        oracle.bandwidth(i, j)
                    )

    def test_rejects_non_square(self):
        with pytest.raises(TopologyError):
            CalibratedTopology(np.zeros((2, 3)))

    def test_rejects_all_inf(self):
        with pytest.raises(TopologyError):
            CalibratedTopology(np.full((2, 2), np.inf))


class TestCalibratedMachineGraph:
    def test_same_bisection_as_oracle(self):
        """The bandwidth-aware split from measurements matches the one
        from the topology database — the paper's calibration claim."""
        oracle = t2(2, 1, 16)
        measured = calibrated_machine_graph(oracle)
        left_m, right_m = bisect_machines(measured, seed=0)
        pods_left = {oracle.pod_of(m) for m in left_m}
        pods_right = {oracle.pod_of(m) for m in right_m}
        assert pods_left.isdisjoint(pods_right)

    def test_weights_match_oracle(self):
        oracle = t1(4, link_bps=10.0)
        measured = calibrated_machine_graph(oracle)
        direct = MachineGraph(oracle)
        assert np.allclose(measured.weights, direct.weights)
