"""Streaming generators: bit-identity with their in-memory twins.

The whole out-of-core story (ISSUE 9) rests on one contract: for equal
seeds, the chunked emitters in :mod:`repro.graph.stream` produce the
*same edge sequence* as the in-memory generators — so a graph built
through the shard store is bit-identical to one built in RAM, and every
downstream result (outputs, cost counters) matches exactly.  These
tests pin that contract:

* raw-sequence invariance: the concatenated chunk stream is identical
  for every chunk size (the emitters re-derive RNG state per chunk, so
  chunking must be invisible);
* graph-level bit-identity: ``Graph.from_edges`` over the stream equals
  the in-memory generator's graph, CSR arrays and all;
* re-enterability: ``chunks()`` returns a fresh, identical iterator
  each time (the count-then-scatter store build consumes it twice);
* edge cases: empty streams, single-chunk streams, seed validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.generators import rmat, small_world, web_feeder_graph
from repro.graph.stream import (
    EdgeStream,
    stream_from_edges,
    stream_rmat,
    stream_small_world,
    stream_web_feeder,
)

CHUNK_SIZES = (997, 4096, 1 << 30)


def collect(stream: EdgeStream) -> np.ndarray:
    """The stream's full (m, 2) edge array, in emission order."""
    parts = [np.stack([src, dst], axis=1)
             for src, dst in stream.chunks()]
    if not parts:
        return np.zeros((0, 2), dtype=np.int64)
    return np.concatenate(parts, axis=0)


def graph_of(stream: EdgeStream) -> Graph:
    return Graph.from_edges(collect(stream),
                            num_vertices=stream.num_vertices,
                            dedup=True, drop_self_loops=True)


class TestChunkInvariance:
    """The emitted sequence must not depend on the chunk size."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_rmat(self, seed):
        ref = collect(stream_rmat(10, edge_factor=6, seed=seed,
                                  chunk_size=CHUNK_SIZES[-1]))
        for chunk in CHUNK_SIZES[:-1]:
            got = collect(stream_rmat(10, edge_factor=6, seed=seed,
                                      chunk_size=chunk))
            np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_small_world(self, seed):
        ref = collect(stream_small_world(1500, k=5, rewire_p=0.2,
                                         seed=seed,
                                         chunk_size=CHUNK_SIZES[-1]))
        for chunk in CHUNK_SIZES[:-1]:
            got = collect(stream_small_world(1500, k=5, rewire_p=0.2,
                                             seed=seed, chunk_size=chunk))
            np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_web_feeder(self, seed):
        ref = collect(stream_web_feeder(64, 900, seed=seed,
                                        chunk_size=CHUNK_SIZES[-1]))
        for chunk in CHUNK_SIZES[:-1]:
            got = collect(stream_web_feeder(64, 900, seed=seed,
                                            chunk_size=chunk))
            np.testing.assert_array_equal(got, ref)

    def test_chunks_respect_requested_size(self):
        stream = stream_rmat(10, edge_factor=6, seed=0, chunk_size=1000)
        sizes = [src.size for src, _ in stream.chunks()]
        assert all(s == 1000 for s in sizes[:-1])
        assert 0 < sizes[-1] <= 1000
        assert sum(sizes) == stream.num_edges


class TestGeneratorParity:
    """Streamed graphs equal the in-memory generators bit for bit."""

    @pytest.mark.parametrize("seed", [0, 7, 2010])
    def test_rmat(self, seed):
        streamed = graph_of(stream_rmat(9, edge_factor=8, seed=seed,
                                        chunk_size=777))
        assert streamed == rmat(9, edge_factor=8, seed=seed)

    def test_rmat_nondefault_skew(self):
        streamed = graph_of(stream_rmat(8, edge_factor=4, a=0.45, b=0.25,
                                        c=0.2, seed=3, chunk_size=100))
        assert streamed == rmat(8, edge_factor=4, a=0.45, b=0.25, c=0.2,
                                seed=3)

    @pytest.mark.parametrize("seed", [0, 7, 2010])
    def test_small_world(self, seed):
        streamed = graph_of(stream_small_world(800, k=6, rewire_p=0.1,
                                               seed=seed, chunk_size=513))
        assert streamed == small_world(800, k=6, rewire_p=0.1, seed=seed)

    def test_small_world_k_clamped(self):
        streamed = graph_of(stream_small_world(4, k=10, seed=1,
                                               chunk_size=2))
        assert streamed == small_world(4, k=10, seed=1)

    @pytest.mark.parametrize("seed", [0, 7, 2010])
    def test_web_feeder(self, seed):
        streamed = graph_of(stream_web_feeder(32, 480, seed=seed,
                                              chunk_size=301))
        assert streamed == web_feeder_graph(32, 480, seed=seed)

    def test_web_feeder_nondefault_shape(self):
        streamed = graph_of(stream_web_feeder(
            16, 100, chords_per_vertex=5, feeder_degree=3, seed=9,
            chunk_size=64))
        assert streamed == web_feeder_graph(16, 100, chords_per_vertex=5,
                                            feeder_degree=3, seed=9)


class TestStreamBasics:
    def test_chunks_reenterable(self):
        stream = stream_rmat(8, edge_factor=4, seed=5, chunk_size=100)
        np.testing.assert_array_equal(collect(stream), collect(stream))

    def test_metadata(self):
        stream = stream_rmat(8, edge_factor=4, seed=0)
        assert stream.num_vertices == 256
        assert stream.num_edges == 256 * 4
        assert collect(stream).shape == (stream.num_edges, 2)

    def test_generator_seed_rejected(self):
        # streams re-derive RNG state per chunk; a shared Generator
        # would make the sequence depend on consumption order
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            stream_rmat(8, seed=rng)
        with pytest.raises(GraphError):
            stream_small_world(10, seed=rng)
        with pytest.raises(GraphError):
            stream_web_feeder(8, 4, seed=rng)

    def test_from_edges_stream(self):
        edges = np.array([[0, 1], [1, 2], [2, 0], [0, 1]], dtype=np.int64)
        stream = stream_from_edges(edges, num_vertices=3, chunk_size=2)
        np.testing.assert_array_equal(collect(stream), edges)
        assert [s.size for s, _ in stream.chunks()] == [2, 2]

    def test_empty_stream(self):
        stream = stream_from_edges(np.zeros((0, 2), dtype=np.int64),
                                   num_vertices=4)
        assert stream.num_edges == 0
        assert collect(stream).shape == (0, 2)
        g = graph_of(stream)
        assert g.num_vertices == 4
        assert g.num_edges == 0
