"""Unit tests for the weighted undirected partitioning graph."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.graph.generators import ring
from repro.partitioning.wgraph import WGraph


class TestFromDigraph:
    def test_symmetrizes(self):
        g = Graph.from_edges([(0, 1)], num_vertices=2)
        wg = WGraph.from_digraph(g)
        assert wg.validate_symmetry()
        assert list(wg.neighbors(1)) == [0]

    def test_merges_antiparallel_weight(self):
        g = Graph.from_edges([(0, 1), (1, 0)], num_vertices=2)
        wg = WGraph.from_digraph(g)
        assert wg.num_edges == 1
        assert list(wg.edge_weights_of(0)) == [2]

    def test_edge_balance_weights(self):
        g = Graph.from_edges([(0, 1), (0, 2)], num_vertices=3)
        wg = WGraph.from_digraph(g, balance="edges")
        assert list(wg.vweights) == [3, 1, 1]

    def test_vertex_balance_weights(self):
        g = ring(4)
        wg = WGraph.from_digraph(g, balance="vertices")
        assert list(wg.vweights) == [1, 1, 1, 1]

    def test_rejects_unknown_balance(self):
        with pytest.raises(PartitioningError):
            WGraph.from_digraph(ring(3), balance="magic")

    def test_total_vertex_weight(self):
        wg = WGraph.from_digraph(ring(4), balance="edges")
        assert wg.total_vertex_weight == 8  # each vertex 1 + outdeg 1


class TestFromEdges:
    def test_basic(self):
        wg = WGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
        assert wg.num_edges == 2
        assert wg.degree(1) == 2
        assert wg.validate_symmetry()

    def test_explicit_weights(self):
        wg = WGraph.from_edges([(0, 1)], num_vertices=2, eweights=[5])
        assert list(wg.edge_weights_of(0)) == [5]

    def test_empty(self):
        wg = WGraph.from_edges([], num_vertices=3)
        assert wg.num_edges == 0
        assert wg.num_vertices == 3

    def test_alignment_validation(self):
        with pytest.raises(PartitioningError):
            WGraph(np.array([0, 1]), np.array([0]), np.array([1, 2]),
                   np.array([1]))
