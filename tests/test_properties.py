"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.partitioned import PartitionedGraph, VertexEncoding
from repro.graph.digraph import Graph
from repro.graph.io import roundtrip_binary, roundtrip_text
from repro.partitioning.coarsen import contract_matching
from repro.partitioning.matching import heavy_edge_matching
from repro.partitioning.metrics import (
    cut_matrix,
    edge_cut,
    inner_edge_ratio,
    weighted_cut,
)
from repro.partitioning.refine import fm_refine
from repro.partitioning.wgraph import WGraph

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def graphs(draw, max_vertices=24, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m,
    ))
    return Graph.from_edges(edges, num_vertices=n, dedup=True,
                            drop_self_loops=True)


@st.composite
def partitioned_graphs(draw, max_parts=5):
    g = draw(graphs())
    k = draw(st.integers(min_value=1, max_value=max_parts))
    parts = np.array(draw(st.lists(
        st.integers(0, k - 1), min_size=g.num_vertices,
        max_size=g.num_vertices,
    )), dtype=np.int64)
    return g, parts, k


COMMON = settings(max_examples=40, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
class TestGraphProperties:
    @COMMON
    @given(graphs())
    def test_degree_sums_equal_edge_count(self, g):
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    @COMMON
    @given(graphs())
    def test_reverse_involution(self, g):
        assert g.reverse().reverse() == g

    @COMMON
    @given(graphs())
    def test_reverse_swaps_degrees(self, g):
        r = g.reverse()
        assert np.array_equal(r.out_degrees(), g.in_degrees())

    @COMMON
    @given(graphs())
    def test_serialization_roundtrips(self, g):
        assert roundtrip_text(g) == g
        assert roundtrip_binary(g) == g

    @COMMON
    @given(graphs())
    def test_undirected_view_symmetric(self, g):
        wg = WGraph.from_digraph(g)
        assert wg.validate_symmetry()

    @COMMON
    @given(graphs())
    def test_undirected_weight_preserves_edge_mass(self, g):
        """Total undirected weight equals the non-loop directed edges."""
        wg = WGraph.from_digraph(g)
        loops = sum(1 for u, v in g.iter_edges() if u == v)
        assert wg.eweights.sum() // 2 == g.num_edges - loops


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------
class TestPartitioningProperties:
    @COMMON
    @given(partitioned_graphs())
    def test_cut_matrix_consistent_with_edge_cut(self, gp):
        g, parts, k = gp
        mat = cut_matrix(g, parts, k)
        assert mat.sum() == g.num_edges
        off_diagonal = mat.sum() - np.trace(mat)
        assert off_diagonal == edge_cut(g, parts)

    @COMMON
    @given(partitioned_graphs())
    def test_ier_bounds(self, gp):
        g, parts, k = gp
        assert 0.0 <= inner_edge_ratio(g, parts) <= 1.0

    @COMMON
    @given(graphs(), st.integers(0, 2**31 - 1))
    def test_matching_involution(self, g, seed):
        wg = WGraph.from_digraph(g)
        match = heavy_edge_matching(wg, np.random.default_rng(seed))
        assert np.array_equal(match[match], np.arange(wg.num_vertices))

    @COMMON
    @given(graphs(), st.integers(0, 2**31 - 1))
    def test_coarsening_preserves_cut(self, g, seed):
        wg = WGraph.from_digraph(g)
        rng = np.random.default_rng(seed)
        match = heavy_edge_matching(wg, rng)
        coarse, mapping = contract_matching(wg, match)
        coarse_side = rng.integers(0, 2, coarse.num_vertices)
        assert weighted_cut(coarse, coarse_side) == weighted_cut(
            wg, coarse_side[mapping]
        )

    @COMMON
    @given(graphs(), st.integers(0, 2**31 - 1))
    def test_fm_never_increases_cut(self, g, seed):
        wg = WGraph.from_digraph(g)
        if wg.num_vertices < 3:
            return
        rng = np.random.default_rng(seed)
        side = rng.integers(0, 2, wg.num_vertices)
        refined = fm_refine(wg, side)
        assert weighted_cut(wg, refined) <= weighted_cut(wg, side)


# ----------------------------------------------------------------------
# Partitioned graph / encoding invariants
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @COMMON
    @given(partitioned_graphs())
    def test_encoding_bijective(self, gp):
        g, parts, k = gp
        enc = VertexEncoding(parts, k)
        seen = {enc.encode(v) for v in range(g.num_vertices)}
        assert seen == set(range(g.num_vertices))

    @COMMON
    @given(partitioned_graphs())
    def test_encoding_partition_lookup_matches(self, gp):
        g, parts, k = gp
        enc = VertexEncoding(parts, k)
        for v in range(g.num_vertices):
            assert enc.partition_of(enc.encode(v)) == parts[v]

    @COMMON
    @given(partitioned_graphs())
    def test_partition_edge_views_cover_graph(self, gp):
        g, parts, k = gp
        pg = PartitionedGraph(g, parts, k)
        total = sum(pg.partition_edge_count(p) for p in range(k))
        assert total == g.num_edges

    @COMMON
    @given(partitioned_graphs())
    def test_boundary_iff_incident_cross_edge(self, gp):
        g, parts, k = gp
        pg = PartitionedGraph(g, parts, k)
        for v in range(g.num_vertices):
            incident_cross = any(
                parts[v] != parts[u]
                for u in list(g.out_neighbors(v)) + list(g.in_neighbors(v))
            )
            assert bool(pg.boundary_mask[v]) == incident_cross


# ----------------------------------------------------------------------
# Network-model invariants
# ----------------------------------------------------------------------
class TestNetworkProperties:
    @COMMON
    @given(
        st.lists(st.tuples(st.integers(1, 7),
                           st.floats(0.0, 1e6, allow_nan=False)),
                 max_size=12),
        st.floats(1.0, 1e6, allow_nan=False),
    )
    def test_flows_time_nonnegative_and_nic_bounded_below(self, flows, nic):
        from repro.cluster.network import NetworkModel
        from repro.cluster.topology import t2

        net = NetworkModel(t2(2, 1, 8, link_bps=100.0))
        t = net.flows_time(0, flows, nic_bps=nic)
        total = sum(b for __, b in flows)
        assert t >= total / nic - 1e-9
        assert t >= 0.0

    @COMMON
    @given(
        st.lists(st.tuples(st.integers(1, 7),
                           st.floats(0.0, 1e6, allow_nan=False)),
                 min_size=1, max_size=8),
    )
    def test_flows_time_monotone_in_bytes(self, flows):
        from repro.cluster.network import NetworkModel
        from repro.cluster.topology import t2

        net = NetworkModel(t2(2, 1, 8, link_bps=100.0))
        base = net.flows_time(0, flows, nic_bps=50.0)
        bigger = [(peer, b * 2) for peer, b in flows]
        assert net.flows_time(0, bigger, nic_bps=50.0) >= base - 1e-9

    @COMMON
    @given(st.integers(0, 7), st.integers(0, 7))
    def test_effective_bandwidth_never_exceeds_link(self, a, b):
        from repro.cluster.network import NetworkModel
        from repro.cluster.topology import t2

        net = NetworkModel(t2(2, 1, 8, link_bps=100.0))
        if a != b:
            assert net.effective_bandwidth(a, b, {}) <= 100.0
            assert (net.effective_bandwidth(a, b, None)
                    <= net.effective_bandwidth(a, b, {}))

    @COMMON
    @given(st.integers(1, 6))
    def test_fair_share_decreases_with_users(self, extra_users):
        from repro.cluster.network import NetworkModel
        from repro.cluster.topology import t2

        topo = t2(2, 1, 8, link_bps=100.0)
        net = NetworkModel(topo)
        key = ("uplink", 0, 2)
        few = {key: {0}}
        many = {key: set(range(extra_users + 1))}
        assert (net.effective_bandwidth(0, 4, many)
                <= net.effective_bandwidth(0, 4, few) + 1e-9)
