"""Tests for the perf-trajectory regression gate and the report renderer.

The gate compares freshly measured ``repro-bench/v1`` records against
the latest committed ``BENCH_PR*.json`` baseline per workload; these
tests pin its semantics: identical records pass, an injected +20%
makespan regression fails, per-metric tolerances are respected,
improvements never fail, and unbaselined workloads are a note rather
than an error.
"""

import json

import pytest

from repro.bench.benchjson import RECORD_FIELDS, SCHEMA
from repro.bench.regress import (
    DEFAULT_TOLERANCES,
    compare_records,
    gate,
    latest_baselines,
)
from repro.bench.trajectory import (
    load_history,
    render_html,
    render_markdown,
    workload_series,
)
from repro.errors import BenchRunError


def record(**overrides):
    base = {
        "makespan_s": 100.0,
        "machine_time_s": 400.0,
        "network_bytes": 10_000,
        "disk_bytes": 50_000,
        "messages_shipped": 1_000,
        "tasks": 64,
        "wall_clock_s": 0.5,
    }
    base.update(overrides)
    return base


def doc(pr, **workloads):
    return {"schema": SCHEMA, "pr": pr, "workloads": workloads}


HISTORY = [doc("PR3", w=record()), doc("PR5", w=record(makespan_s=90.0))]


class TestLatestBaselines:
    def test_newest_doc_wins(self):
        latest = latest_baselines(HISTORY)
        pr, base = latest["w"]
        assert pr == "PR5"
        assert base["makespan_s"] == 90.0

    def test_union_across_docs(self):
        history = [doc("PR3", a=record()), doc("PR4", b=record())]
        latest = latest_baselines(history)
        assert set(latest) == {"a", "b"}
        assert latest["a"][0] == "PR3"


class TestGate:
    def test_passes_at_baseline(self):
        result = compare_records({"w": record(makespan_s=90.0)}, HISTORY)
        assert result.ok
        assert result.regressions == []
        assert "PASS" in result.render()
        # one finding per metric, all against the PR5 baseline
        assert len(result.findings) == len(RECORD_FIELDS)
        assert {f.baseline_pr for f in result.findings} == {"PR5"}

    def test_fails_on_injected_makespan_regression(self):
        # +20% makespan, tolerance 5% -> gate must fail
        result = compare_records({"w": record(makespan_s=108.0)}, HISTORY)
        assert not result.ok
        (finding,) = result.regressions
        assert finding.metric == "makespan_s"
        assert finding.delta_pct == pytest.approx(20.0)
        rendered = result.render()
        assert "FAIL" in rendered and "REGRESSION" in rendered

    def test_per_metric_tolerances_respected(self):
        # +4% on makespan (tol 5%) passes; +4% on network (tol 2%) fails
        current = {"w": record(makespan_s=90.0 * 1.04,
                               network_bytes=10_400)}
        result = compare_records(current, HISTORY)
        assert [f.metric for f in result.regressions] == ["network_bytes"]

    def test_zero_tolerance_metrics_fail_on_any_increase(self):
        result = compare_records({"w": record(makespan_s=90.0,
                                              tasks=65)}, HISTORY)
        assert [f.metric for f in result.regressions] == ["tasks"]
        assert DEFAULT_TOLERANCES["tasks"] == 0.0

    def test_improvements_always_pass(self):
        current = {"w": record(makespan_s=45.0, network_bytes=5_000,
                               tasks=32, wall_clock_s=0.01)}
        assert compare_records(current, HISTORY).ok

    def test_per_workload_overrides_win(self):
        current = {"w": record(makespan_s=108.0)}
        result = compare_records(
            current, HISTORY, per_workload={"w": {"makespan_s": 0.5}})
        assert result.ok
        # and the override only applies to that workload's metric
        result = compare_records(
            current, HISTORY, per_workload={"w": {"network_bytes": 0.5}})
        assert not result.ok

    def test_global_tolerance_override(self):
        current = {"w": record(makespan_s=108.0)}
        assert compare_records(current, HISTORY,
                               tolerances={"makespan_s": 0.25}).ok

    def test_missing_baseline_is_note_not_failure(self):
        result = compare_records({"brand_new": record()}, HISTORY)
        assert result.ok
        assert result.missing == ["brand_new"]
        assert "no committed baseline" in result.render()

    def test_zero_baseline_guarded_by_absolute_floor(self):
        history = [doc("PR3", w=record(messages_shipped=0))]
        # zero -> zero passes even at zero tolerance...
        assert compare_records({"w": record(messages_shipped=0)},
                               history).ok
        # ...but zero -> nonzero is a regression
        result = compare_records({"w": record(messages_shipped=5)},
                                 history)
        assert [f.metric for f in result.regressions] == [
            "messages_shipped"]

    def test_gate_alias(self):
        assert gate({"w": record(makespan_s=90.0)}, HISTORY).ok


class TestTrajectory:
    def write_history(self, root):
        for pr, rec in (("PR3", record()),
                        ("PR10", record(makespan_s=50.0))):
            path = root / f"BENCH_{pr}.json"
            path.write_text(json.dumps(doc(pr, w=rec)))

    def test_load_history_numeric_order(self, tmp_path):
        # PR10 must sort after PR3 (numeric, not lexicographic)
        self.write_history(tmp_path)
        history = load_history(tmp_path)
        assert [d["pr"] for d in history] == ["PR3", "PR10"]
        assert latest_baselines(history)["w"][0] == "PR10"

    def test_pr10_baseline_supersedes_pr9(self, tmp_path):
        # lexicographically "PR10" < "PR9"; the loader must still treat
        # PR10 as the newer baseline or a later PR would be gated
        # against stale numbers
        for pr, rec in (("PR9", record()),
                        ("PR10", record(makespan_s=60.0))):
            path = tmp_path / f"BENCH_{pr}.json"
            path.write_text(json.dumps(doc(pr, w=rec)))
        history = load_history(tmp_path)
        assert [d["pr"] for d in history] == ["PR9", "PR10"]
        pr, base = latest_baselines(history)["w"]
        assert pr == "PR10"
        assert base["makespan_s"] == 60.0

    def test_load_history_rejects_invalid_baseline(self, tmp_path):
        (tmp_path / "BENCH_PR2.json").write_text(
            json.dumps({"schema": "other/v9", "pr": "PR2",
                        "workloads": {"w": record()}}))
        with pytest.raises(BenchRunError) as exc:
            load_history(tmp_path)
        assert "invalid" in str(exc.value)

    def test_load_history_ignores_non_bench_files(self, tmp_path):
        self.write_history(tmp_path)
        (tmp_path / "BENCH_PRx.json").write_text("not json")
        assert len(load_history(tmp_path)) == 2

    def test_workload_series_appends_current(self):
        series = workload_series(HISTORY, {"w": record()},
                                 current_label="now")
        assert [pr for pr, _ in series["w"]] == ["PR3", "PR5", "now"]

    def test_render_markdown(self, tmp_path):
        self.write_history(tmp_path)
        history = load_history(tmp_path)
        current = {"w": record(makespan_s=50.0)}
        result = compare_records(current, history)
        text = render_markdown(history, current, gate_result=result)
        assert "## w" in text
        assert "| PR3 |" in text and "| current |" in text
        assert "(=)" in text            # unchanged vs previous row
        assert "-50.0%" in text         # PR3 -> PR10 improvement
        assert "gate: PASS" in text

    def test_render_markdown_fail_verdict(self, tmp_path):
        self.write_history(tmp_path)
        history = load_history(tmp_path)
        current = {"w": record(makespan_s=80.0)}   # +60% vs PR10
        result = compare_records(current, history)
        text = render_markdown(history, current, gate_result=result)
        assert "gate: FAIL" in text

    def test_render_html_self_contained(self, tmp_path):
        self.write_history(tmp_path)
        history = load_history(tmp_path)
        current = {"w": record(makespan_s=50.0)}
        result = compare_records(current, history)
        page = render_html(history, current, gate_result=result)
        assert page.startswith("<!DOCTYPE html>")
        assert "<style>" in page        # no external assets
        assert "class=\"pass\"" in page
        assert "<h2>w</h2>" in page

    def test_empty_history_renders(self):
        text = render_markdown([], {"w": record()})
        assert "(no committed baselines)" in text


class TestOptionalMetrics:
    """peak_rss_bytes gates only when measured on both sides."""

    def test_regression_when_both_present(self):
        history = [doc("PR9", w=record(peak_rss_bytes=100_000_000))]
        current = {"w": record(peak_rss_bytes=200_000_000)}
        result = compare_records(current, history)
        rss = [f for f in result.regressions
               if f.metric == "peak_rss_bytes"]
        assert len(rss) == 1  # +100% > the 50% tolerance

    def test_within_tolerance_passes(self):
        history = [doc("PR9", w=record(peak_rss_bytes=100_000_000))]
        current = {"w": record(peak_rss_bytes=140_000_000)}
        assert compare_records(current, history).ok

    def test_skipped_when_baseline_lacks_it(self):
        history = [doc("PR3", w=record())]
        current = {"w": record(peak_rss_bytes=10**12)}
        result = compare_records(current, history)
        assert result.ok
        assert not any(f.metric == "peak_rss_bytes"
                       for f in result.findings)

    def test_skipped_when_current_lacks_it(self):
        # a baseline value is not a requirement to keep measuring
        history = [doc("PR9", w=record(peak_rss_bytes=100_000_000))]
        result = compare_records({"w": record()}, history)
        assert result.ok
        assert not any(f.metric == "peak_rss_bytes"
                       for f in result.findings)

    def test_schema_accepts_and_checks_optional_field(self):
        from repro.bench.benchjson import validate_bench_json

        good = doc("PR9", w=record(peak_rss_bytes=123))
        assert validate_bench_json(good) == []
        assert validate_bench_json(doc("PR9", w=record())) == []
        bad = doc("PR9", w=record(peak_rss_bytes="big"))
        assert any("peak_rss_bytes" in e for e in
                   validate_bench_json(bad))
        negative = doc("PR9", w=record(peak_rss_bytes=-1))
        assert any("negative" in e for e in
                   validate_bench_json(negative))
