"""Tests for the GraphFlow high-level dataflow layer."""

import numpy as np
import pytest

from repro.apps import canonical_labels
from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.graph import (
    degree_histogram,
    pagerank,
    weakly_connected_components,
)
from repro.lang import (
    GraphFlow,
    degree_histogram_flow,
    min_label_flow,
    pagerank_flow,
    reach_flow,
)
from tests.conftest import make_test_cluster


@pytest.fixture(scope="module")
def surfer(small_graph):
    return Surfer(small_graph, make_test_cluster(4), num_parts=8, seed=9)


class TestLibraryFlows:
    def test_pagerank_flow_matches_oracle(self, small_graph, surfer):
        result = pagerank_flow(iterations=3).run(surfer)
        assert np.allclose(result["rank"],
                           pagerank(small_graph, num_iterations=3))

    def test_degree_histogram_flow(self, small_graph, surfer):
        result = degree_histogram_flow().run(surfer)
        assert result["histogram"] == degree_histogram(small_graph)

    def test_min_label_flow(self, small_graph):
        sym = small_graph.symmetrized()
        s = Surfer(sym, make_test_cluster(4), num_parts=8, seed=9)
        result = min_label_flow().run(s)
        assert np.array_equal(
            canonical_labels(result["label"]),
            canonical_labels(weakly_connected_components(sym)),
        )

    def test_reach_flow_is_bfs_ball(self, small_graph, surfer):
        from repro.graph import bfs_levels
        hops = 3
        result = reach_flow(seeds=[0], max_hops=hops).run(surfer)
        dist = bfs_levels(small_graph, 0)
        expected = (dist >= 0) & (dist <= hops)
        assert np.array_equal(result["reached"], expected)


class TestFlowMechanics:
    def test_steps_chain_through_context(self, small_graph, surfer):
        """A later aggregate reads the attribute a spread produced."""
        flow = (
            GraphFlow("rank-buckets")
            .vertices(rank=lambda ctx: np.full(ctx.num_vertices,
                                               1.0 / ctx.num_vertices))
            .spread(
                value=lambda u, ctx: 0.85 * ctx["rank"][u]
                / ctx.out_degree(u),
                combine=sum,
                update=lambda v, acc, ctx: 0.15 / ctx.num_vertices
                + (acc or 0.0),
                into="rank", associative=True, default=0.0,
            )
            .aggregate(
                key=lambda u, ctx: int(ctx["rank"][u]
                                       * ctx.num_vertices * 10),
                value=lambda u, ctx: 1,
                reduce=sum,
                into="rank_buckets",
            )
        )
        result = flow.run(surfer)
        assert sum(result["rank_buckets"].values()) == \
            small_graph.num_vertices

    def test_collect_metrics(self, surfer):
        result, metrics = pagerank_flow(iterations=2).run(
            surfer, collect_metrics=True
        )
        assert len(metrics) == 1
        assert metrics[0].response_time > 0

    def test_select_restricts_sources(self, small_graph, surfer):
        flow = (
            GraphFlow("half")
            .vertices(hits=lambda ctx: np.zeros(ctx.num_vertices))
            .spread(
                value=lambda u, ctx: 1.0,
                combine=sum,
                update=lambda v, acc, ctx: ctx["hits"][v] + acc,
                into="hits",
                select=lambda u, ctx: u % 2 == 0,
                associative=True,
            )
        )
        result = flow.run(surfer)
        even_out_edges = sum(
            small_graph.out_degree(u)
            for u in range(0, small_graph.num_vertices, 2)
        )
        assert result["hits"].sum() == even_out_edges

    def test_empty_flow_rejected(self, surfer):
        with pytest.raises(JobError):
            GraphFlow("nothing").run(surfer)

    def test_undeclared_attribute_rejected(self, surfer):
        flow = GraphFlow("bad").spread(
            value=lambda u, ctx: 1, combine=sum,
            update=lambda v, acc, ctx: acc, into="ghost",
        )
        with pytest.raises(JobError):
            flow.run(surfer)

    def test_until_convergence_in_flow(self, small_graph):
        sym = small_graph.symmetrized()
        s = Surfer(sym, make_test_cluster(4), num_parts=8, seed=9)
        flow = min_label_flow(max_iterations=100)
        __, metrics = flow.run(s, collect_metrics=True)
        # converged well before the cap — visible as a cheap single step
        assert len(metrics) == 1

    def test_context_lookup_errors(self, surfer):
        from repro.lang import FlowContext
        ctx = FlowContext(surfer.pgraph)
        with pytest.raises(JobError):
            ctx["missing"]
        assert "missing" not in ctx
