"""Unit tests for the T1/T2/T3 topologies."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.cluster.topology import (
    FlatTopology,
    HeterogeneousTopology,
    TreeTopology,
    t1,
    t2,
    t3,
)


class TestFlat:
    def test_uniform_bandwidth(self):
        topo = t1(8, link_bps=100.0)
        for i in range(8):
            for j in range(8):
                if i != j:
                    assert topo.bandwidth(i, j) == 100.0

    def test_self_bandwidth_infinite(self):
        assert t1(4).bandwidth(2, 2) == float("inf")

    def test_single_pod(self):
        topo = t1(4)
        assert topo.num_pods == 1
        assert topo.pod_of(3) == 0

    def test_rejects_bad_machine(self):
        with pytest.raises(TopologyError):
            t1(4).bandwidth(0, 9)

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            FlatTopology(0)


class TestTree:
    def test_t2_2_1_factors(self):
        topo = t2(2, 1, 32, link_bps=320.0)
        assert topo.bandwidth(0, 1) == 320.0          # intra-pod
        assert topo.bandwidth(0, 16) == 10.0          # cross-pod: /32

    def test_t2_4_2_levels(self):
        topo = t2(4, 2, 32, link_bps=320.0)
        assert topo.pod_of(0) == 0
        assert topo.pod_of(31) == 3
        # pods 0 and 1 meet at the mid switch: /16
        assert topo.bandwidth(0, 8) == 20.0
        # pods 0 and 2 meet at the top switch: /32
        assert topo.bandwidth(0, 16) == 10.0

    def test_common_switch_level(self):
        topo = t2(4, 2, 32)
        assert topo.common_switch_level(0, 1) == 0
        assert topo.common_switch_level(0, 8) == 1
        assert topo.common_switch_level(0, 24) == 2

    def test_custom_delay_factors(self):
        topo = t2(2, 1, 8, link_bps=128.0, top_factor=2.0)
        assert topo.bandwidth(0, 4) == 64.0

    def test_rejects_uneven_pods(self):
        with pytest.raises(TopologyError):
            t2(3, 1, 32)

    def test_rejects_bad_levels(self):
        with pytest.raises(TopologyError):
            TreeTopology(32, 4, num_levels=3)

    def test_two_level_needs_even_pods(self):
        with pytest.raises(TopologyError):
            TreeTopology(30, 5, num_levels=2)


class TestHeterogeneous:
    def test_half_slow(self):
        topo = t3(32, seed=0)
        assert int(topo.is_slow.sum()) == 16

    def test_pair_limited_by_slower(self):
        topo = HeterogeneousTopology(4, link_bps=100.0, slow_fraction=0.5,
                                     slow_factor=2.0, seed=1)
        slow = np.flatnonzero(topo.is_slow)
        fast = np.flatnonzero(~topo.is_slow)
        assert topo.bandwidth(int(fast[0]), int(fast[1])) == 100.0
        assert topo.bandwidth(int(fast[0]), int(slow[0])) == 50.0
        if slow.size >= 2:
            assert topo.bandwidth(int(slow[0]), int(slow[1])) == 50.0

    def test_deterministic_by_seed(self):
        a = t3(16, seed=3)
        b = t3(16, seed=3)
        assert np.array_equal(a.is_slow, b.is_slow)


class TestDerived:
    def test_bandwidth_matrix_symmetric(self):
        topo = t2(2, 1, 8)
        mat = topo.bandwidth_matrix()
        assert np.array_equal(mat, mat.T)
        assert np.all(np.isinf(np.diag(mat)))

    def test_aggregate_bandwidth_pod_split_lowest(self):
        """Splitting along the pod boundary crosses the least bandwidth."""
        topo = t2(2, 1, 8)
        pod_split = topo.aggregate_bandwidth(range(4), range(4, 8))
        mixed = topo.aggregate_bandwidth([0, 1, 4, 5], [2, 3, 6, 7])
        assert pod_split < mixed
