"""Unit tests for execution-trace analysis (Figure 10 timelines)."""

import numpy as np
import pytest

from repro.runtime.tasks import Task, TaskExecution
from repro.runtime.trace import io_rate_timeline, machine_timeline


def execution(machine, start, end, read=0.0, write=0.0, succeeded=True,
              name="t"):
    task = Task(name, machine=machine, disk_read_bytes=read,
                disk_write_bytes=write)
    return TaskExecution(task, machine, start, end, succeeded)


class TestIoRateTimeline:
    def test_uniform_rate(self):
        execs = [execution(0, 0.0, 10.0, read=100.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=5.0)
        assert list(times) == [0.0, 5.0]
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(10.0)

    def test_total_bytes_conserved(self):
        execs = [execution(0, 1.0, 7.0, read=60.0, write=30.0),
                 execution(1, 3.0, 9.0, read=45.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=2.0)
        assert (rates * 2.0).sum() == pytest.approx(135.0)

    def test_machine_filter(self):
        execs = [execution(0, 0.0, 4.0, read=40.0),
                 execution(1, 0.0, 4.0, read=80.0)]
        __, rates0 = io_rate_timeline(execs, 4.0, machine=0)
        assert rates0[0] == pytest.approx(10.0)

    def test_empty(self):
        times, rates = io_rate_timeline([], 5.0)
        assert times.size == 0 and rates.size == 0

    def test_zero_duration_task_bytes_in_one_bucket(self):
        execs = [execution(0, 3.0, 3.0, read=50.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=2.0)
        assert (rates * 2.0).sum() == pytest.approx(50.0)

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            io_rate_timeline([], 0.0)


class TestMachineTimeline:
    def test_grouped_and_sorted(self):
        execs = [execution(1, 5.0, 6.0, name="b"),
                 execution(0, 0.0, 1.0, name="a"),
                 execution(1, 1.0, 2.0, name="c")]
        timeline = machine_timeline(execs)
        assert list(timeline) == [0, 1]
        assert [name for __, __, name, __ in timeline[1]] == ["c", "b"]
