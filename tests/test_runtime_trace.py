"""Unit tests for execution-trace analysis (Figure 10 timelines)."""

import numpy as np
import pytest

from repro.runtime.events import Span
from repro.runtime.tasks import RecoveryEvent, Task, TaskExecution
from repro.runtime.trace import (
    io_rate_timeline,
    machine_timeline,
    recovery_timeline,
)


def execution(machine, start, end, read=0.0, write=0.0, succeeded=True,
              name="t", planned=0.0):
    task = Task(name, machine=machine, disk_read_bytes=read,
                disk_write_bytes=write)
    return TaskExecution(task, machine, start, end, succeeded,
                         planned_duration=planned)


class TestIoRateTimeline:
    def test_uniform_rate(self):
        execs = [execution(0, 0.0, 10.0, read=100.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=5.0)
        assert list(times) == [0.0, 5.0]
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(10.0)

    def test_total_bytes_conserved(self):
        execs = [execution(0, 1.0, 7.0, read=60.0, write=30.0),
                 execution(1, 3.0, 9.0, read=45.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=2.0)
        assert (rates * 2.0).sum() == pytest.approx(135.0)

    def test_machine_filter(self):
        execs = [execution(0, 0.0, 4.0, read=40.0),
                 execution(1, 0.0, 4.0, read=80.0)]
        __, rates0 = io_rate_timeline(execs, 4.0, machine=0)
        assert rates0[0] == pytest.approx(10.0)

    def test_empty(self):
        times, rates = io_rate_timeline([], 5.0)
        assert times.size == 0 and rates.size == 0

    def test_zero_duration_task_bytes_in_one_bucket(self):
        execs = [execution(0, 3.0, 3.0, read=50.0)]
        times, rates = io_rate_timeline(execs, bucket_seconds=2.0)
        assert (rates * 2.0).sum() == pytest.approx(50.0)

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            io_rate_timeline([], 0.0)


class TestFailedTaskProration:
    """A killed task's bytes must prorate over the window it ran."""

    def test_failed_task_prorates_with_recorded_plan(self):
        # dispatched for 10s of 100 bytes, killed after 5s: 50 bytes land
        execs = [execution(0, 0.0, 5.0, read=100.0, succeeded=False,
                           planned=10.0)]
        __, rates = io_rate_timeline(execs, bucket_seconds=5.0)
        assert (rates * 5.0).sum() == pytest.approx(50.0)

    def test_hand_built_execution_falls_back_to_duration(self):
        # no recorded plan (planned_duration=0): no proration possible,
        # the full bytes spread over the observed window
        execs = [execution(0, 0.0, 5.0, read=100.0, succeeded=False)]
        __, rates = io_rate_timeline(execs, bucket_seconds=5.0)
        assert (rates * 5.0).sum() == pytest.approx(100.0)

    def test_succeeded_task_never_prorates(self):
        # a successful pipelined task can have duration != planned;
        # its bytes all moved regardless
        execs = [execution(0, 0.0, 5.0, read=100.0, planned=8.0)]
        __, rates = io_rate_timeline(execs, bucket_seconds=5.0)
        assert (rates * 5.0).sum() == pytest.approx(100.0)

    def test_span_view_prorates_identically(self):
        span = Span(name="t", kind="transfer", start=0.0, end=5.0,
                    machine=0, succeeded=False, disk_read_bytes=100.0,
                    planned_duration=10.0)
        __, rates = io_rate_timeline([span], bucket_seconds=5.0)
        assert (rates * 5.0).sum() == pytest.approx(50.0)


class TestRecoveryTimeline:
    def test_bucket_boundaries(self):
        events = [RecoveryEvent(0.0, "detect", 0),
                  RecoveryEvent(9.999, "detect", 0),
                  RecoveryEvent(10.0, "redispatch", 1),
                  RecoveryEvent(20.0, "redispatch", 1)]
        times, series = recovery_timeline(events, bucket_seconds=10.0)
        assert list(times) == [0.0, 10.0]
        # [0, 10) holds the first two; an event exactly on the horizon
        # clamps into the last bucket rather than creating a new one
        assert list(series["detect"]) == [2.0, 0.0]
        assert list(series["redispatch"]) == [0.0, 2.0]

    def test_total_events_conserved(self):
        events = [RecoveryEvent(t, "detect", 0)
                  for t in (0.0, 3.0, 7.5, 12.0, 29.9)]
        __, series = recovery_timeline(events, bucket_seconds=10.0)
        assert series["detect"].sum() == len(events)

    def test_empty_and_non_finite(self):
        times, series = recovery_timeline([], 10.0)
        assert times.size == 0 and series == {}
        only_inf = [RecoveryEvent(float("inf"), "data-loss", 0)]
        times, series = recovery_timeline(only_inf, 10.0)
        assert times.size == 0 and series == {}

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            recovery_timeline([], 0.0)


class TestMachineTimeline:
    def test_grouped_and_sorted(self):
        execs = [execution(1, 5.0, 6.0, name="b"),
                 execution(0, 0.0, 1.0, name="a"),
                 execution(1, 1.0, 2.0, name="c")]
        timeline = machine_timeline(execs)
        assert list(timeline) == [0, 1]
        assert [name for __, __, name, __ in timeline[1]] == ["c", "b"]

    def test_span_view(self):
        spans = [Span(name="s", kind="transfer", start=0.0, end=2.0,
                      machine=3)]
        timeline = machine_timeline(spans)
        assert timeline == {3: [(0.0, 2.0, "s", True)]}
