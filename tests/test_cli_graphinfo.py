"""CLI graphinfo command and edge-list input path."""

import pytest

from repro.cli import main as cli_main
from repro.graph import ring, write_edge_list


class TestGraphInfo:
    def test_synthetic(self, capsys):
        rc = cli_main(["graphinfo", "--communities", "4",
                       "--community-size", "32", "--no-ier"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "clustering" in out
        assert "inner-edge ratio" not in out  # --no-ier

    def test_with_ier_curve(self, capsys):
        rc = cli_main(["graphinfo", "--communities", "4",
                       "--community-size", "32"])
        assert rc == 0
        assert "inner-edge ratio" in capsys.readouterr().out

    def test_edge_list_input(self, tmp_path, capsys):
        path = tmp_path / "g.tsv"
        write_edge_list(ring(12), path)
        rc = cli_main(["graphinfo", "--edge-list", str(path), "--no-ier"])
        assert rc == 0
        assert "12" in capsys.readouterr().out
