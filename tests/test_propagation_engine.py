"""Unit tests for the propagation engine's mechanics and accounting."""

import numpy as np
import pytest

from repro.core.surfer import Surfer
from repro.graph import pagerank
from repro.propagation.api import MessageBox, PropagationApp, message_nbytes
from repro.propagation.engine import virtual_partition
from repro.apps import NetworkRankingPropagation
from tests.conftest import make_test_cluster


class TestMessageBox:
    def test_bag_semantics(self):
        box = MessageBox()
        box.add(1, 10)
        box.add(1, 20)
        assert box.values_of(1) == [10, 20]
        assert box.message_count() == 2
        assert len(box) == 1

    def test_merge_semantics(self):
        box = MessageBox(merge=lambda a, b: a + b)
        box.add(1, 10)
        box.add(1, 20)
        assert box.values_of(1) == [30]
        assert box.message_count() == 2

    def test_missing_dest(self):
        assert MessageBox().values_of(99) == []

    def test_payload_bytes_counts_merged_once(self):
        app = NetworkRankingPropagation()
        raw = MessageBox()
        merged = MessageBox(merge=lambda a, b: a + b)
        for box in (raw, merged):
            box.add(1, 1.0)
            box.add(1, 2.0)
        assert raw.payload_bytes(app) == 2 * message_nbytes(app, 1.0)
        assert merged.payload_bytes(app) == message_nbytes(app, 3.0)


class TestVirtualPartition:
    def test_deterministic(self):
        assert virtual_partition(42, 16) == virtual_partition(42, 16)

    def test_in_range(self):
        for key in range(100):
            assert 0 <= virtual_partition(key, 7) < 7

    def test_numpy_ints_match_python_ints(self):
        assert virtual_partition(np.int64(9), 8) == virtual_partition(9, 8)


class _CountingApp(PropagationApp):
    """Sends 1 along every edge, sums at the destination."""

    name = "count-in-degree"
    is_associative = True
    combine_all_vertices = True

    def setup(self, pgraph):
        class State:
            values = {}
            num = pgraph.num_vertices
        return State()

    def transfer(self, u, v, state):
        return 1

    def combine(self, v, values, state):
        return sum(values)

    def merge(self, a, b):
        return a + b

    def update(self, state, combined):
        state.values = dict(combined)

    def finalize(self, state):
        return state.values


class TestEngineSemantics:
    @pytest.fixture()
    def surfer(self, small_graph):
        return Surfer(small_graph, make_test_cluster(4), num_parts=8,
                      seed=3)

    def test_counts_in_degrees(self, small_graph, surfer):
        result = surfer.run_propagation(_CountingApp())
        expected = small_graph.in_degrees()
        for v in range(small_graph.num_vertices):
            assert result.result.get(v, 0) == expected[v]

    def test_local_opts_do_not_change_results(self, small_graph, surfer):
        a = surfer.run_propagation(_CountingApp(), local_opts=True)
        b = surfer.run_propagation(_CountingApp(), local_opts=False)
        assert a.result == b.result

    def test_local_opts_reduce_io(self, surfer):
        on = surfer.run_propagation(_CountingApp(), local_opts=True)
        off = surfer.run_propagation(_CountingApp(), local_opts=False)
        # merging only helps when several messages share a destination;
        # traffic must never increase, and disk I/O must strictly drop
        assert on.metrics.network_bytes <= off.metrics.network_bytes
        assert on.metrics.disk_bytes < off.metrics.disk_bytes
        # small graphs leave little room, but it must not get much worse
        assert on.metrics.response_time <= 1.1 * off.metrics.response_time

    def test_report_shape(self, surfer):
        job = surfer.run_propagation(_CountingApp())
        assert len(job.reports) == 1
        report = job.reports[0]
        assert report.messages_emitted == surfer.graph.num_edges
        assert report.messages_shipped <= report.messages_emitted
        assert report.elapsed >= 0

    def test_local_propagation_counts_inner_vertices(self, surfer):
        job = surfer.run_propagation(_CountingApp(), local_opts=True)
        report = job.reports[0]
        assert report.locally_propagated > 0

    def test_pagerank_matches_oracle_multi_iteration(
        self, small_graph, surfer
    ):
        job = surfer.run_propagation(NetworkRankingPropagation(),
                                     iterations=4)
        oracle = pagerank(small_graph, num_iterations=4)
        assert np.allclose(job.result, oracle)

    def test_metrics_reset_between_runs(self, surfer):
        first = surfer.run_propagation(_CountingApp())
        second = surfer.run_propagation(_CountingApp())
        assert second.metrics.network_bytes == first.metrics.network_bytes
        assert second.metrics.response_time == pytest.approx(
            first.metrics.response_time
        )

    def test_iterations_scale_io(self, surfer):
        one = surfer.run_propagation(NetworkRankingPropagation(),
                                     iterations=1)
        three = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=3)
        assert three.metrics.disk_bytes > 2 * one.metrics.disk_bytes

    def test_rejects_zero_iterations(self, surfer):
        from repro.errors import JobError
        with pytest.raises(JobError):
            surfer.run_propagation(_CountingApp(), iterations=0)
