"""Tests for graph profiling and edge-list interchange."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    clustering_coefficient,
    ier_curve,
    profile_graph,
    read_edge_list,
    ring,
    star,
    write_edge_list,
)
from repro.graph.analysis import degree_statistics, reciprocity


class TestEdgeList:
    def test_roundtrip(self, small_graph):
        buf = io.StringIO()
        write_edge_list(small_graph, buf)
        buf.seek(0)
        assert read_edge_list(buf) == small_graph

    def test_comments_and_commas(self):
        text = "# SNAP header\n% mm comment\n0,1\n1 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_rejects_short_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("42\n"))

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("a b\n"))

    def test_rejects_negative(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("-1 0\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "edges.tsv"
        write_edge_list(ring(5), path)
        assert read_edge_list(path) == ring(5)


class TestDegreeStatistics:
    def test_uniform_gini_zero(self):
        mean, peak, gini = degree_statistics(ring(10))
        assert mean == 1.0 and peak == 1
        assert gini == pytest.approx(0.0, abs=1e-9)

    def test_star_gini_high(self):
        __, peak, gini = degree_statistics(star(20))
        assert peak == 20
        assert gini > 0.9

    def test_empty(self):
        assert degree_statistics(Graph.empty(0)) == (0.0, 0, 0.0)


class TestClusteringAndReciprocity:
    def test_triangle_fully_clustered(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_ring_unclustered(self):
        assert clustering_coefficient(ring(10)) == pytest.approx(0.0)

    def test_reciprocity(self):
        g = Graph.from_edges([(0, 1), (1, 0), (1, 2)])
        assert reciprocity(g) == pytest.approx(2 / 3)

    def test_reciprocity_empty(self):
        assert reciprocity(Graph.empty(3)) == 0.0


class TestProfile:
    def test_profile_fields(self, tiny_graph):
        profile = profile_graph(tiny_graph, parts_list=(4,))
        assert profile.num_vertices == tiny_graph.num_vertices
        assert profile.num_edges == tiny_graph.num_edges
        assert 0 <= profile.largest_component_fraction <= 1
        assert 4 in profile.ier_curve

    def test_report_renders(self, tiny_graph):
        text = profile_graph(tiny_graph, with_ier=False).report()
        assert "vertices" in text and "clustering" in text

    def test_ier_curve_monotone(self, tiny_graph):
        curve = ier_curve(tiny_graph, parts_list=(2, 8))
        assert curve[2] >= curve[8]
